//===- Program/Serialize.cpp ------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The .tpb bundle writer and loader. See Program/Serialize.h for the
// format layout and the versioning policy. The writer is deterministic
// (aggregates in canonical order, tables in insertion order); the loader
// treats the input as hostile: every read is bounds-checked, every index
// validated, and the result must pass Spec::validate plus the full IR
// verifier before it is handed to a backend.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/Serialize.h"

#include "tessla/Program/BinaryCodec.h"
#include "tessla/Program/Verify.h"
#include "tessla/Runtime/BuiltinImpls.h"
#include "tessla/Runtime/Containers.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <unordered_map>

using namespace tessla;
using bc::ByteReader;
using bc::ByteWriter;
using bc::DecodeContext;

uint64_t tessla::tpbChecksum(const uint8_t *Data, size_t Size) {
  uint64_t H = 14695981039346656037ULL; // FNV-1a-64 offset basis
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 1099511628211ULL; // FNV-1a-64 prime
  }
  return H;
}

namespace {

constexpr uint32_t TagBuiltins = bc::fourCC('B', 'L', 'T', 'N');
constexpr uint32_t TagPool = bc::fourCC('P', 'O', 'O', 'L');
constexpr uint32_t TagSpec = bc::fourCC('S', 'P', 'E', 'C');
constexpr uint32_t TagSlots = bc::fourCC('S', 'L', 'O', 'T');
constexpr uint32_t TagSteps = bc::fourCC('S', 'T', 'E', 'P');
constexpr uint32_t TagLasts = bc::fourCC('L', 'A', 'S', 'T');
constexpr uint32_t TagDelays = bc::fourCC('D', 'E', 'L', 'Y');
constexpr uint32_t TagOutputs = bc::fourCC('O', 'U', 'T', 'S');
constexpr uint32_t TagMutability = bc::fourCC('M', 'U', 'T', 'A');

// The byte-level primitives (ByteWriter/ByteReader), the canonical Value
// encoding and the nesting bound all live in Program/BinaryCodec.h now —
// shared with the checkpoint and wire formats. This file keeps only the
// .tpb-specific encodings: types, literals, and the program tables.
using bc::MaxNesting;

void writeType(ByteWriter &W, const Type &T) {
  W.u8(static_cast<uint8_t>(T.kind()));
  if (T.kind() == TypeKind::Var)
    W.u32(T.varId());
  for (const Type &P : T.params())
    writeType(W, P);
}

void writeLiteral(ByteWriter &W, const ConstantLit &Lit) {
  W.u8(static_cast<uint8_t>(Lit.V.index()));
  struct Payload {
    ByteWriter &W;
    void operator()(std::monostate) const {}
    void operator()(bool B) const { W.u8(B ? 1 : 0); }
    void operator()(int64_t I) const { W.u64(static_cast<uint64_t>(I)); }
    void operator()(double D) const {
      uint64_t Bits;
      std::memcpy(&Bits, &D, sizeof(Bits));
      W.u64(Bits);
    }
    void operator()(const std::string &S) const { W.str(S); }
  };
  std::visit(Payload{W}, Lit.V);
}

// --- Reader ---------------------------------------------------------------

Type readType(ByteReader &R, DecodeContext &Ctx, unsigned Depth) {
  if (Depth > MaxNesting) {
    Ctx.fail("type nesting exceeds the format limit");
    return Type();
  }
  uint8_t Kind = R.u8();
  if (R.failed() || !Ctx.Ok)
    return Type();
  switch (static_cast<TypeKind>(Kind)) {
  case TypeKind::Unit:
    return Type::unit();
  case TypeKind::Bool:
    return Type::boolean();
  case TypeKind::Int:
    return Type::integer();
  case TypeKind::Float:
    return Type::floating();
  case TypeKind::String:
    return Type::string();
  case TypeKind::Set:
    return Type::set(readType(R, Ctx, Depth + 1));
  case TypeKind::Queue:
    return Type::queue(readType(R, Ctx, Depth + 1));
  case TypeKind::Map: {
    Type K = readType(R, Ctx, Depth + 1);
    Type V = readType(R, Ctx, Depth + 1);
    return Type::map(std::move(K), std::move(V));
  }
  case TypeKind::Var:
    return Type::var(R.u32());
  }
  Ctx.fail(formatString("unknown type kind %u", Kind));
  return Type();
}

ConstantLit readLiteral(ByteReader &R, DecodeContext &Ctx) {
  ConstantLit Lit;
  uint8_t Tag = R.u8();
  switch (Tag) {
  case 0:
    Lit.V = std::monostate{};
    break;
  case 1:
    Lit.V = R.u8() != 0;
    break;
  case 2:
    Lit.V = static_cast<int64_t>(R.u64());
    break;
  case 3: {
    uint64_t Bits = R.u64();
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    Lit.V = D;
    break;
  }
  case 4:
    Lit.V = R.str();
    break;
  default:
    Ctx.fail(formatString("unknown literal tag %u", Tag));
    break;
  }
  return Lit;
}

} // namespace

// --- The serializer proper ------------------------------------------------

namespace tessla {

/// Friend of Program: encodes/decodes the private tables directly.
class ProgramSerializer {
public:
  static std::vector<uint8_t> encode(const Program &P);
  static std::optional<Program> decode(const uint8_t *Data, size_t Size,
                                       DiagnosticEngine &Diags);
};

} // namespace tessla

std::vector<uint8_t> ProgramSerializer::encode(const Program &P) {
  const Spec &S = P.spec();

  // Interning tables. Builtins are referenced by *name* so a loader
  // re-resolves evaluators against its own registry; constants live in
  // one deduplicated pool keyed by their canonical encoding.
  std::vector<std::string_view> BuiltinNames;
  std::unordered_map<std::string_view, uint16_t> BuiltinIndex;
  auto internBuiltin = [&](BuiltinId Fn) -> uint16_t {
    std::string_view Name = builtinInfo(Fn).Name;
    auto [It, Inserted] = BuiltinIndex.emplace(
        Name, static_cast<uint16_t>(BuiltinNames.size()));
    if (Inserted)
      BuiltinNames.push_back(Name);
    return It->second;
  };

  std::vector<const Value *> Pool;
  std::map<std::vector<uint8_t>, uint32_t> PoolIndex;
  auto internValue = [&](const Value &V) -> uint32_t {
    ByteWriter Enc;
    writeValue(Enc, V);
    auto [It, Inserted] =
        PoolIndex.emplace(Enc.data(), static_cast<uint32_t>(Pool.size()));
    if (Inserted)
      Pool.push_back(&V);
    return It->second;
  };

  // SPEC: the full stream table — names, kinds, types, literals,
  // arguments, output marks — so a loaded program can parse traces,
  // format events and render itself without any frontend.
  ByteWriter SpecW;
  SpecW.u32(S.numStreams());
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    SpecW.str(D.Name);
    SpecW.u8(static_cast<uint8_t>(D.Kind));
    SpecW.u16(internBuiltin(D.Fn));
    writeLiteral(SpecW, D.Literal);
    writeType(SpecW, D.Ty);
    SpecW.u8(static_cast<uint8_t>(D.Args.size()));
    for (StreamId A : D.Args)
      SpecW.u32(A);
    SpecW.u8(D.IsOutput ? 1 : 0);
  }

  // SLOT: the dense value-slot assignment.
  ByteWriter SlotW;
  SlotW.u16(P.numValueSlots());
  SlotW.u32(S.numStreams());
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    SlotW.u16(P.valueSlot(Id));

  // STEP: the calculation section, optimizer opcodes included.
  ByteWriter StepW;
  StepW.u32(static_cast<uint32_t>(P.steps().size()));
  for (const ProgramStep &Step : P.steps()) {
    StepW.u8(static_cast<uint8_t>(Step.Op));
    StepW.u8(static_cast<uint8_t>(Step.Kind));
    StepW.u16(internBuiltin(Step.Fn));
    StepW.u8(Step.InPlace ? 1 : 0);
    StepW.u8(Step.NumArgs);
    StepW.u16(Step.Dst);
    // Only ArgSlot[0..NumArgs) carry meaning; optimizer rewrites leave
    // stale slot numbers in the tail entries, which may exceed the
    // compacted slot table. Canonicalize them to zero so equal programs
    // encode identically and the loader's range check stays strict.
    for (unsigned AI = 0; AI != 3; ++AI)
      StepW.u16(AI < Step.NumArgs ? Step.ArgSlot[AI] : 0);
    StepW.u16(Step.Aux);
    StepW.u32(Step.Id);
    StepW.u8(static_cast<uint8_t>(Step.Args.size()));
    for (StreamId A : Step.Args)
      StepW.u32(A);
    StepW.u32(internValue(Step.ConstVal));
    StepW.u16(internBuiltin(Step.Fn2));
    StepW.u8(Step.InPlace2 ? 1 : 0);
    StepW.u8(Step.FusedArity);
    StepW.u32(Step.FusedId);
    StepW.u8(Step.Folded ? 1 : 0);
  }

  ByteWriter LastW;
  LastW.u32(static_cast<uint32_t>(P.lastSlots().size()));
  for (const LastSlot &L : P.lastSlots()) {
    LastW.u32(L.Source);
    LastW.u16(L.ValueSlot);
  }

  ByteWriter DelayW;
  DelayW.u32(static_cast<uint32_t>(P.delays().size()));
  for (const DelaySlot &D : P.delays()) {
    DelayW.u32(D.Id);
    DelayW.u32(D.DelaysArg);
    DelayW.u32(D.ResetArg);
    DelayW.u16(D.ValueSlot);
    DelayW.u16(D.DelaysSlot);
    DelayW.u16(D.ResetSlot);
  }

  ByteWriter OutW;
  OutW.u32(static_cast<uint32_t>(P.outputs().size()));
  for (const OutputSlot &O : P.outputs()) {
    OutW.u32(O.Id);
    OutW.u16(O.ValueSlot);
  }

  ByteWriter MutW;
  MutW.u32(S.numStreams());
  for (StreamId Id = 0; Id < S.numStreams(); Id += 8) {
    uint8_t Byte = 0;
    for (unsigned Bit = 0; Bit != 8 && Id + Bit < S.numStreams(); ++Bit)
      if (P.Mutable[Id + Bit])
        Byte |= static_cast<uint8_t>(1u << Bit);
    MutW.u8(Byte);
  }

  // BLTN/POOL are written last (interning happens above) but placed
  // first in the file so the loader resolves them before the tables
  // that reference them.
  ByteWriter BltnW;
  BltnW.u32(static_cast<uint32_t>(BuiltinNames.size()));
  for (std::string_view Name : BuiltinNames)
    BltnW.str(Name);

  ByteWriter PoolW;
  PoolW.u32(static_cast<uint32_t>(Pool.size()));
  for (const Value *V : Pool)
    writeValue(PoolW, *V);

  // --- Assemble: header, section table inline with payloads. ---
  const std::pair<uint32_t, const ByteWriter *> Sections[] = {
      {TagBuiltins, &BltnW}, {TagPool, &PoolW},   {TagSpec, &SpecW},
      {TagSlots, &SlotW},    {TagSteps, &StepW},  {TagLasts, &LastW},
      {TagDelays, &DelayW},  {TagOutputs, &OutW}, {TagMutability, &MutW},
  };

  ByteWriter Body;
  Body.u32(static_cast<uint32_t>(std::size(Sections)));
  for (const auto &[Tag, W] : Sections) {
    Body.u32(Tag);
    Body.u64(W->data().size());
    Body.bytes(*W);
  }

  ByteWriter Out;
  for (uint8_t M : TPBMagic)
    Out.u8(M);
  Out.u32(TPBFormatVersion);
  Out.u64(tpbChecksum(Body.data().data(), Body.data().size()));
  Out.bytes(Body);
  return Out.take();
}

std::optional<Program>
ProgramSerializer::decode(const uint8_t *Data, size_t Size,
                          DiagnosticEngine &Diags) {
  DecodeContext Ctx{Diags};
  auto fail = [&](std::string Msg) {
    Ctx.fail(std::move(Msg));
    return std::nullopt;
  };

  // --- Header. ---
  if (Size < TPBChecksumStart + 4)
    return fail("bundle truncated (smaller than the fixed header)");
  if (std::memcmp(Data, TPBMagic, sizeof(TPBMagic)) != 0)
    return fail("not a TeSSLa program bundle (bad magic)");
  ByteReader Header(Data + 4, 12);
  uint32_t Version = Header.u32();
  uint64_t Checksum = Header.u64();
  if (Version != TPBFormatVersion)
    return fail(formatString(
        "unsupported bundle format version %u (this build reads %u)",
        Version, TPBFormatVersion));
  if (tpbChecksum(Data + TPBChecksumStart, Size - TPBChecksumStart) !=
      Checksum)
    return fail("content checksum mismatch (truncated or corrupted "
                "bundle)");

  // --- Section table: one linear walk with absolute offsets. ---
  struct SectionRef {
    size_t Off = 0;
    size_t Len = 0;
    bool Present = false;
  };
  std::map<uint32_t, SectionRef> Sections;
  {
    ByteReader T(Data + TPBChecksumStart, 4);
    uint32_t N = T.u32();
    if (T.failed() || N > 1024)
      return fail("malformed section table");
    size_t Cursor = TPBChecksumStart + 4;
    for (uint32_t I = 0; I != N; ++I) {
      if (Size - Cursor < 12)
        return fail("section table entry overruns the bundle");
      ByteReader E(Data + Cursor, 12);
      uint32_t Tag = E.u32();
      uint64_t Len = E.u64();
      Cursor += 12;
      if (Len > Size - Cursor)
        return fail("section '" + bc::fourCCName(Tag) + "' overruns the bundle");
      SectionRef &Ref = Sections[Tag];
      if (Ref.Present)
        return fail("duplicate section '" + bc::fourCCName(Tag) + "'");
      Ref = {Cursor, static_cast<size_t>(Len), true};
      Cursor += static_cast<size_t>(Len);
    }
    if (Cursor != Size)
      return fail("trailing bytes after the last section");
  }

  auto section = [&](uint32_t Tag) -> std::optional<ByteReader> {
    auto It = Sections.find(Tag);
    if (It == Sections.end() || !It->second.Present) {
      Ctx.fail("missing required section '" + bc::fourCCName(Tag) + "'");
      return std::nullopt;
    }
    return ByteReader(Data + It->second.Off, It->second.Len);
  };

  // --- BLTN: resolve builtin names against this build's registry. ---
  auto BltnR = section(TagBuiltins);
  if (!BltnR)
    return std::nullopt;
  uint32_t NumBuiltinNames = BltnR->u32();
  if (static_cast<uint64_t>(NumBuiltinNames) * 4 > BltnR->remaining())
    return fail("builtin name count exceeds the section payload");
  struct ResolvedBuiltin {
    BuiltinId Id;
    BuiltinFn Impl;
  };
  std::vector<ResolvedBuiltin> Builtins;
  for (uint32_t I = 0; I != NumBuiltinNames; ++I) {
    std::string Name = BltnR->str();
    if (BltnR->failed())
      return fail("truncated builtin name table");
    std::optional<BuiltinId> Id = builtinByName(Name);
    if (!Id)
      return fail("bundle references unknown builtin '" + Name +
                  "' (not registered in this build)");
    BuiltinFn Impl = builtinImpl(*Id);
    if (!Impl)
      return fail("builtin '" + Name +
                  "' has no registered evaluator in this build");
    Builtins.push_back({*Id, Impl});
  }
  if (!BltnR->atEnd())
    return fail("trailing bytes in section 'BLTN'");

  // --- POOL: the constant pool. ---
  auto PoolR = section(TagPool);
  if (!PoolR)
    return std::nullopt;
  uint32_t NumPool = PoolR->u32();
  if (NumPool > PoolR->remaining())
    return fail("constant pool count exceeds the section payload");
  std::vector<Value> Pool;
  for (uint32_t I = 0; I != NumPool && Ctx.Ok; ++I) {
    Pool.push_back(readValue(*PoolR, Ctx, 0));
    if (PoolR->failed())
      return fail("truncated constant pool");
  }
  if (!Ctx.Ok)
    return std::nullopt;
  if (!PoolR->atEnd())
    return fail("trailing bytes in section 'POOL'");

  // --- SPEC: the stream table. ---
  auto SpecR = section(TagSpec);
  if (!SpecR)
    return std::nullopt;
  uint32_t NumStreams = SpecR->u32();
  if (NumStreams >= 65535)
    return fail("stream count exceeds the 16-bit slot id space");
  if (static_cast<uint64_t>(NumStreams) * 11 > SpecR->remaining())
    return fail("stream count exceeds the section payload");
  std::vector<StreamDef> Defs;
  Defs.reserve(NumStreams);
  for (uint32_t Id = 0; Id != NumStreams && Ctx.Ok; ++Id) {
    StreamDef D;
    D.Name = SpecR->str();
    uint8_t Kind = SpecR->u8();
    if (Kind > static_cast<uint8_t>(StreamKind::Delay))
      return fail(formatString("stream #%u has unknown kind %u", Id,
                               Kind));
    D.Kind = static_cast<StreamKind>(Kind);
    uint16_t FnIdx = SpecR->u16();
    if (FnIdx >= Builtins.size())
      return fail(formatString("stream #%u references builtin index %u "
                               "out of range",
                               Id, FnIdx));
    D.Fn = Builtins[FnIdx].Id;
    D.Literal = readLiteral(*SpecR, Ctx);
    D.Ty = readType(*SpecR, Ctx, 0);
    uint8_t NumArgs = SpecR->u8();
    if (NumArgs > 3)
      return fail(formatString("stream #%u has %u arguments (max 3)",
                               Id, NumArgs));
    for (uint8_t A = 0; A != NumArgs; ++A)
      D.Args.push_back(SpecR->u32());
    D.IsOutput = SpecR->u8() != 0;
    if (SpecR->failed())
      return fail("truncated stream table");
    Defs.push_back(std::move(D));
  }
  if (!Ctx.Ok)
    return std::nullopt;
  if (!SpecR->atEnd())
    return fail("trailing bytes in section 'SPEC'");

  // Rebuild and re-validate the spec: name uniqueness, arities,
  // argument ranges and the acyclicity rule all come for free.
  std::optional<Spec> SpecOpt = Spec::fromDefs(std::move(Defs), Diags);
  if (!SpecOpt) {
    Ctx.fail("bundle stream table failed validation");
    return std::nullopt;
  }

  Program P;
  P.S = std::make_shared<const Spec>(std::move(*SpecOpt));

  // --- SLOT: dense value-slot assignment. ---
  auto SlotR = section(TagSlots);
  if (!SlotR)
    return std::nullopt;
  P.NumValueSlots = SlotR->u16();
  if (SlotR->u32() != NumStreams)
    return fail("slot table disagrees with the stream count");
  for (uint32_t Id = 0; Id != NumStreams; ++Id) {
    uint16_t Slot = SlotR->u16();
    if (Slot > P.NumValueSlots)
      return fail(formatString("value slot of stream #%u out of range",
                               Id));
    P.ValueSlots.push_back(Slot);
  }
  if (SlotR->failed() || !SlotR->atEnd())
    return fail("malformed section 'SLOT'");

  // --- LAST / DELY / OUTS: the slot tables. ---
  auto LastR = section(TagLasts);
  if (!LastR)
    return std::nullopt;
  uint32_t NumLasts = LastR->u32();
  if (static_cast<uint64_t>(NumLasts) * 6 > LastR->remaining())
    return fail("last-slot count exceeds the section payload");
  for (uint32_t I = 0; I != NumLasts; ++I) {
    LastSlot L{LastR->u32(), LastR->u16()};
    if (L.Source >= NumStreams || L.ValueSlot > P.NumValueSlots)
      return fail(formatString("last slot #%u out of range", I));
    P.LastSlots.push_back(L);
  }
  if (LastR->failed() || !LastR->atEnd())
    return fail("malformed section 'LAST'");

  auto DelayR = section(TagDelays);
  if (!DelayR)
    return std::nullopt;
  uint32_t NumDelays = DelayR->u32();
  if (static_cast<uint64_t>(NumDelays) * 18 > DelayR->remaining())
    return fail("delay-slot count exceeds the section payload");
  for (uint32_t I = 0; I != NumDelays; ++I) {
    DelaySlot D;
    D.Id = DelayR->u32();
    D.DelaysArg = DelayR->u32();
    D.ResetArg = DelayR->u32();
    D.ValueSlot = DelayR->u16();
    D.DelaysSlot = DelayR->u16();
    D.ResetSlot = DelayR->u16();
    if (D.Id >= NumStreams || D.DelaysArg >= NumStreams ||
        D.ResetArg >= NumStreams || D.ValueSlot > P.NumValueSlots ||
        D.DelaysSlot > P.NumValueSlots || D.ResetSlot > P.NumValueSlots)
      return fail(formatString("delay slot #%u out of range", I));
    P.Delays.push_back(D);
  }
  if (DelayR->failed() || !DelayR->atEnd())
    return fail("malformed section 'DELY'");

  auto OutR = section(TagOutputs);
  if (!OutR)
    return std::nullopt;
  uint32_t NumOuts = OutR->u32();
  if (static_cast<uint64_t>(NumOuts) * 6 > OutR->remaining())
    return fail("output count exceeds the section payload");
  for (uint32_t I = 0; I != NumOuts; ++I) {
    OutputSlot O{OutR->u32(), OutR->u16()};
    if (O.Id >= NumStreams || O.ValueSlot > P.NumValueSlots)
      return fail(formatString("output slot #%u out of range", I));
    P.Outputs.push_back(O);
  }
  if (OutR->failed() || !OutR->atEnd())
    return fail("malformed section 'OUTS'");

  // --- MUTA: per-stream mutability decisions. ---
  auto MutR = section(TagMutability);
  if (!MutR)
    return std::nullopt;
  if (MutR->u32() != NumStreams)
    return fail("mutability table disagrees with the stream count");
  P.Mutable.assign(NumStreams, false);
  for (uint32_t Id = 0; Id < NumStreams; Id += 8) {
    uint8_t Byte = MutR->u8();
    for (unsigned Bit = 0; Bit != 8 && Id + Bit < NumStreams; ++Bit)
      P.Mutable[Id + Bit] = (Byte >> Bit) & 1;
  }
  if (MutR->failed() || !MutR->atEnd())
    return fail("malformed section 'MUTA'");

  // --- STEP: the calculation section, dispatch re-resolved by name. ---
  auto StepR = section(TagSteps);
  if (!StepR)
    return std::nullopt;
  uint32_t NumSteps = StepR->u32();
  if (static_cast<uint64_t>(NumSteps) * 34 > StepR->remaining())
    return fail("step count exceeds the section payload");
  for (uint32_t I = 0; I != NumSteps; ++I) {
    ProgramStep Step;
    uint8_t Op = StepR->u8();
    if (Op > static_cast<uint8_t>(Opcode::FusedLiftLift))
      return fail(formatString("step #%u has unknown opcode %u", I, Op));
    Step.Op = static_cast<Opcode>(Op);
    uint8_t Kind = StepR->u8();
    if (Kind > static_cast<uint8_t>(StreamKind::Delay))
      return fail(formatString("step #%u has unknown stream kind %u", I,
                               Kind));
    Step.Kind = static_cast<StreamKind>(Kind);
    uint16_t FnIdx = StepR->u16();
    uint8_t InPlace = StepR->u8();
    Step.NumArgs = StepR->u8();
    if (Step.NumArgs > 3)
      return fail(formatString("step #%u has %u argument slots (max 3)",
                               I, Step.NumArgs));
    Step.Dst = StepR->u16();
    for (SlotId &A : Step.ArgSlot)
      A = StepR->u16();
    Step.Aux = StepR->u16();
    Step.Id = StepR->u32();
    uint8_t NumArgIds = StepR->u8();
    if (NumArgIds > 8)
      return fail(formatString("step #%u has oversized argument list",
                               I));
    for (uint8_t A = 0; A != NumArgIds; ++A)
      Step.Args.push_back(StepR->u32());
    uint32_t PoolIdx = StepR->u32();
    uint16_t Fn2Idx = StepR->u16();
    uint8_t InPlace2 = StepR->u8();
    Step.FusedArity = StepR->u8();
    Step.FusedId = StepR->u32();
    Step.Folded = StepR->u8() != 0;
    if (StepR->failed())
      return fail("truncated step table");
    if (FnIdx >= Builtins.size() || Fn2Idx >= Builtins.size())
      return fail(formatString("step #%u references builtin index out "
                               "of range",
                               I));
    if (Step.Dst > P.NumValueSlots)
      return fail(formatString("step #%u destination slot out of range",
                               I));
    for (unsigned AI = 0; AI != Step.NumArgs; ++AI)
      if (Step.ArgSlot[AI] > P.NumValueSlots)
        return fail(formatString("step #%u argument slot out of range",
                                 I));
    if (PoolIdx >= Pool.size())
      return fail(formatString("step #%u constant index out of range",
                               I));
    if (Step.Id >= NumStreams)
      return fail(formatString("step #%u stream id out of range", I));
    if (Step.FusedId >= NumStreams && Step.FusedId != 0)
      return fail(formatString("step #%u fused stream id out of range",
                               I));
    Step.Fn = Builtins[FnIdx].Id;
    Step.Fn2 = Builtins[Fn2Idx].Id;
    Step.InPlace = InPlace != 0;
    Step.InPlace2 = InPlace2 != 0;
    // Each step owns its constant: mutable aggregate payloads must not
    // be shared across steps (a destructive in-place family would
    // update both), which deepCopy() restores exactly as compile() did.
    Step.ConstVal = Pool[PoolIdx].deepCopy();
    // Re-resolve the evaluators by name — never from stored pointers.
    switch (Step.Op) {
    case Opcode::LiftAll:
    case Opcode::LiftFirstRest:
    case Opcode::FusedLastLift:
      Step.Impl = Builtins[FnIdx].Impl;
      break;
    case Opcode::FusedLiftLift:
      Step.Impl = Builtins[FnIdx].Impl;
      Step.Impl2 = Builtins[Fn2Idx].Impl;
      break;
    default:
      break;
    }
    P.Steps.push_back(std::move(Step));
  }
  if (!StepR->atEnd())
    return fail("trailing bytes in section 'STEP'");

  // --- Final gate: the full IR verifier over the decoded program. ---
  if (!opt::verifyProgram(P, Diags)) {
    Ctx.fail("bundle failed program verification");
    return std::nullopt;
  }
  return P;
}

// --- Public API -----------------------------------------------------------

std::vector<uint8_t> tessla::serializeProgram(const Program &P) {
  return ProgramSerializer::encode(P);
}

std::optional<Program> tessla::loadProgram(const uint8_t *Data, size_t Size,
                                           DiagnosticEngine &Diags) {
  return ProgramSerializer::decode(Data, Size, Diags);
}

std::optional<Program>
tessla::loadProgram(const std::vector<uint8_t> &Bytes,
                    DiagnosticEngine &Diags) {
  return ProgramSerializer::decode(Bytes.data(), Bytes.size(), Diags);
}

bool tessla::writeProgramFile(const Program &P, const std::string &Path,
                              DiagnosticEngine &Diags) {
  std::vector<uint8_t> Bytes = serializeProgram(P);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Diags.error("tpb: cannot open '" + Path + "' for writing");
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Bytes.size();
  if (!Ok)
    Diags.error("tpb: short write to '" + Path + "'");
  return Ok;
}

std::optional<Program> tessla::loadProgramFile(const std::string &Path,
                                               DiagnosticEngine &Diags) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Diags.error("tpb: cannot open '" + Path + "'");
    return std::nullopt;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return loadProgram(Bytes, Diags);
}
