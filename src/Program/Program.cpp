//===- Program/Program.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Program/Program.h"

#include "tessla/Support/Format.h"

#include <algorithm>

using namespace tessla;

// Program::compile lives in Program/Lower.cpp (library tessla_lower): it
// is the only member that consumes analysis results, and keeping it out
// of this translation unit keeps tessla_program frontend-free.

namespace {

std::string joinNames(const Spec &S, const StreamId *Ids, size_t N) {
  std::string Out;
  for (size_t I = 0; I != N; ++I)
    Out += (I ? ", " : "") + S.stream(Ids[I]).Name;
  return Out;
}

/// Renders one step's operator text. The opt-introduced opcodes and
/// folded steps have no spec-level shape, so they render from the step
/// itself; everything else renders from the original StreamKind.
std::string stepText(const Spec &S, const ProgramStep &Step) {
  switch (Step.Op) {
  case Opcode::ConstTick:
    return "const " + Step.ConstVal.str() + " on " +
           S.stream(Step.Args[0]).Name;
  case Opcode::FusedLastLift:
    return std::string(builtinInfo(Step.Fn).Name) + "(last(" +
           S.stream(Step.Args[0]).Name + ", " +
           S.stream(Step.Args[1]).Name + ")" +
           (Step.Args.size() > 2
                ? ", " + joinNames(S, Step.Args.data() + 2,
                                   Step.Args.size() - 2)
                : "") +
           ")";
  case Opcode::FusedLiftLift:
    return std::string(builtinInfo(Step.Fn).Name) + "(" +
           std::string(builtinInfo(Step.Fn2).Name) + "(" +
           joinNames(S, Step.Args.data(), Step.FusedArity) + ")" +
           (Step.NumArgs > Step.FusedArity
                ? ", " + joinNames(S, Step.Args.data() + Step.FusedArity,
                                   Step.NumArgs - Step.FusedArity)
                : "") +
           ")";
  default:
    break;
  }
  if (Step.Folded) {
    if (Step.Op == Opcode::Const)
      return "const " + Step.ConstVal.str();
    if (Step.Op == Opcode::Skip)
      return "never";
  }
  return std::string();
}

} // namespace

std::string Program::str() const {
  std::string Out;
  unsigned Index = 0;
  for (const ProgramStep &Step : Steps) {
    const StreamDef &D = S->stream(Step.Id);
    std::string Kind = stepText(*S, Step);
    if (!Kind.empty()) {
      Out += std::to_string(Index++) + ": " + D.Name + " = " + Kind;
      if (Step.InPlace && Step.Kind == StreamKind::Lift)
        Out += "   [in-place]";
      if (Step.InPlace2)
        Out += "   [in-place-inner]";
      if (Step.Folded)
        Out += "   [folded]";
      if (Step.Op == Opcode::FusedLastLift ||
          Step.Op == Opcode::FusedLiftLift)
        Out += "   [fused]";
      if (Step.Dst != NumValueSlots)
        Out += "   @" + std::to_string(Step.Dst);
      if (Step.Op == Opcode::FusedLastLift)
        Out += " last[" + std::to_string(Step.Aux) + "]";
      Out += '\n';
      continue;
    }
    switch (Step.Kind) {
    case StreamKind::Input:
      Kind = "input";
      break;
    case StreamKind::Nil:
      Kind = "nil";
      break;
    case StreamKind::Unit:
      Kind = "unit";
      break;
    case StreamKind::Const:
      Kind = "const " + D.Literal.str();
      break;
    case StreamKind::Time:
      Kind = "time(" + S->stream(Step.Args[0]).Name + ")";
      break;
    case StreamKind::Lift: {
      std::vector<std::string> Args;
      for (StreamId A : Step.Args)
        Args.push_back(S->stream(A).Name);
      Kind = std::string(builtinInfo(Step.Fn).Name) + "(" +
             [&Args] {
               std::string Joined;
               for (size_t I = 0; I != Args.size(); ++I)
                 Joined += (I ? ", " : "") + Args[I];
               return Joined;
             }() +
             ")";
      break;
    }
    case StreamKind::Last:
      Kind = "last(" + S->stream(Step.Args[0]).Name + ", " +
             S->stream(Step.Args[1]).Name + ")";
      break;
    case StreamKind::Delay:
      Kind = "delay(" + S->stream(Step.Args[0]).Name + ", " +
             S->stream(Step.Args[1]).Name + ")";
      break;
    }
    Out += std::to_string(Index++) + ": " + D.Name + " = " + Kind;
    if (Step.InPlace && Step.Kind == StreamKind::Lift)
      Out += "   [in-place]";
    // A rewritten step that still renders through its builtin shape
    // (e.g. a clock-exact filter degenerated to a one-arm merge).
    if (Step.Folded)
      Out += "   [folded]";
    if (Step.Kind != StreamKind::Nil)
      Out += "   @" + std::to_string(Step.Dst);
    if (Step.Kind == StreamKind::Last)
      Out += " last[" + std::to_string(Step.Aux) + "]";
    if (Step.Kind == StreamKind::Delay)
      Out += " delay[" + std::to_string(Step.Aux) + "]";
    Out += '\n';
  }

  Out += formatString("slots: value=%u last=%zu delay=%zu\n",
                      static_cast<unsigned>(NumValueSlots),
                      LastSlots.size(), Delays.size());
  for (size_t I = 0; I != LastSlots.size(); ++I)
    Out += "last[" + std::to_string(I) + "]: " +
           S->stream(LastSlots[I].Source).Name + " @" +
           std::to_string(LastSlots[I].ValueSlot) + "\n";
  for (size_t I = 0; I != Delays.size(); ++I) {
    const DelaySlot &D = Delays[I];
    Out += "delay[" + std::to_string(I) + "]: " + S->stream(D.Id).Name +
           " @" + std::to_string(D.ValueSlot) + " delays=" +
           S->stream(D.DelaysArg).Name + "@" +
           std::to_string(D.DelaysSlot) + " reset=" +
           S->stream(D.ResetArg).Name + "@" +
           std::to_string(D.ResetSlot) + "\n";
  }
  if (!Outputs.empty()) {
    Out += "outputs:";
    for (const OutputSlot &O : Outputs)
      Out += " " + S->stream(O.Id).Name + "@" +
             std::to_string(O.ValueSlot);
    Out += '\n';
  }
  return Out;
}

uint32_t Program::inPlaceStepCount() const {
  uint32_t Count = 0;
  for (const ProgramStep &Step : Steps) {
    if (Step.InPlace && Step.Kind == StreamKind::Lift)
      ++Count;
    if (Step.InPlace2)
      ++Count; // destructive producer half of a fused step
  }
  return Count;
}
