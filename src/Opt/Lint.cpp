//===- Opt/Lint.cpp ---------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The spec linter. All firing-dependent rules share one boolean
// *can-fire* fixpoint — an over-approximation of "may ever carry an
// event" mirroring the builtins' event semantics — so a "never" verdict
// is a proof and the linter reports no false positives on specs whose
// streams can fire.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/Lint.h"

using namespace tessla;
using namespace tessla::opt;

namespace {

/// May the stream ever carry an event? Over-approximated least fixpoint.
std::vector<bool> computeCanFire(const Spec &S) {
  std::vector<bool> CanFire(S.numStreams(), false);
  auto transfer = [&](const StreamDef &D) -> bool {
    switch (D.Kind) {
    case StreamKind::Input:
    case StreamKind::Unit:
    case StreamKind::Const:
      return true;
    case StreamKind::Nil:
      return false;
    case StreamKind::Time:
      return CanFire[D.Args[0]];
    case StreamKind::Lift:
      switch (builtinInfo(D.Fn).Events) {
      case EventSemantics::All: {
        bool All = true;
        for (StreamId A : D.Args)
          All = All && CanFire[A];
        return All;
      }
      case EventSemantics::Any: {
        bool Any = false;
        for (StreamId A : D.Args)
          Any = Any || CanFire[A];
        return Any;
      }
      case EventSemantics::FirstAndAnyRest: {
        bool AnyRest = false;
        for (size_t I = 1; I != D.Args.size(); ++I)
          AnyRest = AnyRest || CanFire[D.Args[I]];
        return CanFire[D.Args[0]] && AnyRest;
      }
      case EventSemantics::Custom:
        return CanFire[D.Args[0]] && CanFire[D.Args[1]];
      }
      return true;
    case StreamKind::Last:
      return CanFire[D.Args[0]] && CanFire[D.Args[1]];
    case StreamKind::Delay:
      return CanFire[D.Args[0]] && CanFire[D.Args[1]];
    }
    return true;
  };
  for (uint32_t Iter = 0; Iter != S.numStreams() + 2; ++Iter) {
    bool Changed = false;
    for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
      bool New = transfer(S.stream(Id));
      if (New != CanFire[Id]) {
        CanFire[Id] = New;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return CanFire;
}

/// Does \p From reach \p Target over spec operands (any edge kind)?
bool reaches(const Spec &S, StreamId From, StreamId Target) {
  std::vector<bool> Seen(S.numStreams(), false);
  std::vector<StreamId> Work{From};
  while (!Work.empty()) {
    StreamId Id = Work.back();
    Work.pop_back();
    if (Id == Target)
      return true;
    if (Seen[Id])
      continue;
    Seen[Id] = true;
    for (StreamId A : S.stream(Id).Args)
      Work.push_back(A);
  }
  return false;
}

} // namespace

unsigned opt::lintSpec(const Spec &S, DiagnosticEngine &Diags,
                       const LintOptions &Opts) {
  std::vector<bool> CanFire = computeCanFire(S);

  std::vector<uint32_t> Readers(S.numStreams(), 0);
  for (const StreamDef &D : S.streams())
    for (StreamId A : D.Args)
      ++Readers[A];

  unsigned Findings = 0;
  auto report = [&](SourceLocation Loc, std::string Msg) {
    ++Findings;
    if (Opts.WarningsAsErrors)
      Diags.error(Loc, std::move(Msg));
    else
      Diags.warning(Loc, std::move(Msg));
  };

  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);

    if (builtinByName(D.Name))
      report(D.Loc, "stream '" + D.Name +
                        "' shadows the builtin function of the same "
                        "name [shadows-builtin]");

    if (!D.IsOutput && D.Kind != StreamKind::Input && Readers[Id] == 0 &&
        (D.Name.empty() || D.Name[0] != '_'))
      report(D.Loc, "stream '" + D.Name +
                        "' is never read and not an output; prefix the "
                        "name with '_' to silence [unused-stream]");

    if (D.IsOutput && !CanFire[Id])
      report(D.Loc, "output '" + D.Name +
                        "' can never produce an event [nil-output]");

    if (D.Kind == StreamKind::Last && !CanFire[Id] &&
        CanFire[D.Args[1]] && reaches(S, D.Args[0], Id))
      report(D.Loc,
             "last '" + D.Name +
                 "' can never fire: its value side depends on itself "
                 "and has no initial event [uninitialized-last]");
  }
  return Findings;
}
