//===- Opt/Lint.cpp ---------------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The spec linter, rebuilt on the abstract-interpretation framework
// (Analysis/AbsInt.h): the spec is compiled to the baseline program and
// every firing-dependent rule reads the shared fact store instead of a
// bespoke scan. A "never" verdict is a proof — the tick lattice is a
// may-over-approximation — so the linter reports no false positives on
// specs whose streams can fire; and because the facts are sharper than
// the old boolean can-fire fixpoint (range-proven-false filter
// conditions silence streams too), the firing rules are strictly wider
// at identical diagnostic text.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/Lint.h"

#include "tessla/Analysis/AbsInt.h"
#include "tessla/Analysis/Pipeline.h"

#include <unordered_map>

using namespace tessla;
using namespace tessla::opt;

namespace {

/// Does \p From reach \p Target over spec operands (any edge kind)?
bool reaches(const Spec &S, StreamId From, StreamId Target) {
  std::vector<bool> Seen(S.numStreams(), false);
  std::vector<StreamId> Work{From};
  while (!Work.empty()) {
    StreamId Id = Work.back();
    Work.pop_back();
    if (Id == Target)
      return true;
    if (Seen[Id])
      continue;
    Seen[Id] = true;
    for (StreamId A : S.stream(Id).Args)
      Work.push_back(A);
  }
  return false;
}

} // namespace

unsigned opt::lintSpec(const Spec &S, DiagnosticEngine &Diags,
                       const LintOptions &Opts) {
  // One baseline (unoptimized) compile feeds every firing-dependent
  // rule; stream ids survive the lowering unchanged, so facts are
  // queried by spec ids directly.
  AnalysisResult AR = analyzeSpec(S);
  Program P = Program::compile(AR);
  absint::AnalysisFacts Facts = absint::AnalysisFacts::compute(P);

  std::vector<uint32_t> Readers(S.numStreams(), 0);
  for (const StreamDef &D : S.streams())
    for (StreamId A : D.Args)
      ++Readers[A];

  std::unordered_map<StreamId, const std::string *> UnboundedCycle;
  for (const absint::AnalysisFacts::UnboundedGrowth &U :
       Facts.unboundedStreams())
    UnboundedCycle.emplace(U.Id, &U.Cycle);

  unsigned Findings = 0;
  bool ReportedHere = false;
  auto report = [&](SourceLocation Loc, std::string Msg) {
    ++Findings;
    ReportedHere = true;
    if (Opts.WarningsAsErrors)
      Diags.error(Loc, std::move(Msg));
    else
      Diags.warning(Loc, std::move(Msg));
  };

  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    ReportedHere = false;

    if (builtinByName(D.Name))
      report(D.Loc, "stream '" + D.Name +
                        "' shadows the builtin function of the same "
                        "name [shadows-builtin]");

    if (!D.IsOutput && D.Kind != StreamKind::Input && Readers[Id] == 0 &&
        (D.Name.empty() || D.Name[0] != '_'))
      report(D.Loc, "stream '" + D.Name +
                        "' is never read and not an output; prefix the "
                        "name with '_' to silence [unused-stream]");

    if (D.IsOutput && !Facts.canFire(Id))
      report(D.Loc, "output '" + D.Name +
                        "' can never produce an event [nil-output]");

    if (D.Kind == StreamKind::Last && !Facts.canFire(Id) &&
        Facts.canFire(D.Args[1]) && reaches(S, D.Args[0], Id))
      report(D.Loc,
             "last '" + D.Name +
                 "' can never fire: its value side depends on itself "
                 "and has no initial event [uninitialized-last]");

    // --- Framework-powered rules below; each carries its proving facts
    // in the message. ---

    // A named, non-output definition that provably never fires, unless a
    // rule above already diagnosed the stream (its silence usually *is*
    // that finding) or the author silenced it with a '_' prefix.
    if (!ReportedHere && !D.IsOutput && D.Kind != StreamKind::Input &&
        !Facts.canFire(Id) && !D.Name.empty() && D.Name[0] != '_')
      report(D.Loc, "stream '" + D.Name +
                        "' can never produce an event (" +
                        Facts.factString(Id) + ") [unreachable-step]");

    // A queue whose element-count bound widened to unbounded: every trip
    // around the reported cycle enqueues without a compensating
    // trim/dequeue cap.
    if (D.Kind == StreamKind::Lift && D.Fn == BuiltinId::QueueEnq) {
      auto It = UnboundedCycle.find(Id);
      if (It != UnboundedCycle.end())
        report(D.Loc, "queue '" + D.Name +
                          "' grows without bound (growth cycle: " +
                          *It->second + ") [unbounded-queue-growth]");
    }

    // A merge arm whose clock is covered by the earlier arms can never
    // win the first-present-wins race — it is dead weight, and usually a
    // clock mistake.
    if (D.Kind == StreamKind::Lift &&
        builtinInfo(D.Fn).Events == EventSemantics::Any &&
        D.Args.size() >= 2) {
      std::vector<StreamId> Earlier{D.Args[0]};
      for (size_t K = 1; K != D.Args.size(); ++K) {
        StreamId Arm = D.Args[K];
        if (Facts.canFire(Arm) && Facts.clockCoveredBy(Arm, Earlier))
          report(D.Loc,
                 "merge arm " + std::to_string(K + 1) + " of '" + D.Name +
                     "' can never win: its clock (" +
                     Facts.formulaString(Arm) +
                     ") is covered by the earlier arms [clock-mismatch]");
        Earlier.push_back(Arm);
      }
    }
  }
  return Findings;
}
