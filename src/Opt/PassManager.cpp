//===- Opt/PassManager.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

using namespace tessla;
using namespace tessla::opt;

bool PassManager::run(Program &P, AnalysisResult &A, DiagnosticEngine &Diags,
                      OptStatistics *Stats, bool Verify) {
  for (std::unique_ptr<Pass> &Pass : Passes) {
    PassStatistics PS;
    PS.Pass = std::string(Pass->name());
    PS.StepsBefore = static_cast<uint32_t>(P.steps().size());
    PS.ValueSlotsBefore = P.numValueSlots();
    PS.LastSlotsBefore = static_cast<uint32_t>(P.lastSlots().size());
    PS.DelaySlotsBefore = static_cast<uint32_t>(P.delays().size());

    // Fresh facts at every pass boundary: a pass may strengthen what the
    // next one can prove (folded constants sharpen ranges, eliminated
    // steps sharpen tick sets).
    absint::AnalysisFacts Facts = absint::AnalysisFacts::compute(P);
    bool Ok = Pass->run(P, A, Facts, PS, Diags);

    PS.StepsAfter = static_cast<uint32_t>(P.steps().size());
    PS.ValueSlotsAfter = P.numValueSlots();
    PS.LastSlotsAfter = static_cast<uint32_t>(P.lastSlots().size());
    PS.DelaySlotsAfter = static_cast<uint32_t>(P.delays().size());
    if (Stats)
      Stats->Passes.push_back(PS);

    if (!Ok) {
      Diags.error("optimization pass '" + PS.Pass + "' failed");
      return false;
    }
    if (Verify && !verifyProgram(P, Diags)) {
      Diags.error("program verification failed after pass '" + PS.Pass +
                  "'");
      return false;
    }
  }
  return true;
}

bool opt::optimizeProgram(Program &P, AnalysisResult &A,
                          const OptOptions &Opts, DiagnosticEngine &Diags,
                          OptStatistics *Stats) {
  if (Opts.Level == 0)
    return true;
  PassManager PM;
  PM.add(createConstantFoldPass());
  PM.add(createStepFusionPass());
  PM.add(createDeadStepEliminationPass());
  return PM.run(P, A, Diags, Stats, Opts.Verify);
}
