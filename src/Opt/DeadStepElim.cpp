//===- Opt/DeadStepElim.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Dead-step elimination with full slot-table compaction. Roots are the
// output streams (their values are observable) and the input streams
// (feed() writes their slots and the generated feed_* API must keep
// working); everything not backward-reachable over step operands — which
// include last sources, delay operands and fused-away operand lists — is
// removed. Afterwards the value/last/delay slot tables are rebuilt
// densely over the surviving steps, exactly like Program::compile lays
// them out, and every step's slot fields are recomputed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

#include <unordered_map>

using namespace tessla;
using namespace tessla::opt;

namespace {

class DeadStepElim : public Pass {
public:
  std::string_view name() const override { return "dead-step-elim"; }

  bool run(Program &P, AnalysisResult &A, absint::AnalysisFacts &Facts,
           PassStatistics &Stats, DiagnosticEngine &Diags) override;
};

bool DeadStepElim::run(Program &P, AnalysisResult &A,
                       absint::AnalysisFacts &Facts, PassStatistics &Stats,
                       DiagnosticEngine &Diags) {
  (void)A;
  (void)Diags;
  const Spec &S = P.spec();
  Program::OptView View = P.optView();

  // --- Nil-proven step elision: a step the abstract interpreter proves
  // silent computes nothing observable — neutralize it up front so the
  // reachability below doesn't keep its operands alive. This is where
  // the pass is strictly wider than pure reachability: silence can be a
  // range fact (a filter whose condition is provably false), not just a
  // structural one. ---
  for (ProgramStep &Step : View.Steps)
    if (Step.Op != Opcode::Skip && !Facts.canFire(Step.Id)) {
      Step.Op = Opcode::Skip;
      Step.Impl = nullptr;
      Step.InPlace = false;
      Step.NumArgs = 0;
      Step.Args.clear();
    }

  std::unordered_map<StreamId, size_t> StepOf;
  for (size_t I = 0; I != View.Steps.size(); ++I)
    StepOf[View.Steps[I].Id] = I;

  // --- Backward reachability from outputs and inputs. ---
  std::vector<bool> Live(S.numStreams(), false);
  std::vector<StreamId> Work;
  auto mark = [&](StreamId Id) {
    if (!Live[Id]) {
      Live[Id] = true;
      Work.push_back(Id);
    }
  };
  for (const OutputSlot &O : View.Outputs)
    mark(O.Id);
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (S.stream(Id).Kind == StreamKind::Input)
      mark(Id);
  while (!Work.empty()) {
    StreamId Id = Work.back();
    Work.pop_back();
    auto It = StepOf.find(Id);
    if (It == StepOf.end())
      continue;
    for (StreamId Arg : View.Steps[It->second].Args)
      mark(Arg);
  }

  // --- Keep live steps; skip-steps of non-input streams do nothing and
  // go too, even when the stream itself is live (a folded-silent output
  // keeps its output entry but needs no step). ---
  std::vector<ProgramStep> NewSteps;
  NewSteps.reserve(View.Steps.size());
  for (ProgramStep &Step : View.Steps) {
    if (!Live[Step.Id])
      continue;
    if (Step.Op == Opcode::Skip && Step.Kind != StreamKind::Input)
      continue;
    NewSteps.push_back(std::move(Step));
  }
  Stats.Eliminated =
      static_cast<uint32_t>(View.Steps.size() - NewSteps.size());

  // --- Recompute dense value slots in StreamId order (the layout
  // Program::compile uses), giving slots only to streams whose kept step
  // can write one; everything else shares the dead slot. ---
  std::vector<bool> Writes(S.numStreams(), false);
  for (const ProgramStep &Step : NewSteps)
    if (Step.Op != Opcode::Skip || Step.Kind == StreamKind::Input)
      Writes[Step.Id] = true;
  SlotId Next = 0;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (Writes[Id])
      View.ValueSlots[Id] = Next++;
  View.NumValueSlots = Next;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (!Writes[Id])
      View.ValueSlots[Id] = Next;

  // --- Rebuild the last-slot table from the surviving readers, in
  // source StreamId order like Program::compile. ---
  std::vector<bool> NeedsLast(S.numStreams(), false);
  for (const ProgramStep &Step : NewSteps)
    if (Step.Op == Opcode::Last || Step.Op == Opcode::FusedLastLift)
      NeedsLast[Step.Args[0]] = true;
  std::vector<SlotId> LastIndex(S.numStreams(), 0);
  View.LastSlots.clear();
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (NeedsLast[Id]) {
      LastIndex[Id] = static_cast<SlotId>(View.LastSlots.size());
      View.LastSlots.push_back({Id, View.ValueSlots[Id]});
    }

  // --- Rebuild the delay table from the surviving delay steps, in
  // StreamId order like Program::compile. ---
  std::vector<SlotId> DelayIndex(S.numStreams(), 0);
  std::vector<const ProgramStep *> DelaySteps;
  for (const ProgramStep &Step : NewSteps)
    if (Step.Op == Opcode::Delay)
      DelaySteps.push_back(&Step);
  View.Delays.clear();
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    for (const ProgramStep *Step : DelaySteps)
      if (Step->Id == Id) {
        DelayIndex[Id] = static_cast<SlotId>(View.Delays.size());
        View.Delays.push_back({Id, Step->Args[0], Step->Args[1],
                               View.ValueSlots[Id],
                               View.ValueSlots[Step->Args[0]],
                               View.ValueSlots[Step->Args[1]]});
      }

  // --- Recompute every step's slot fields against the new layout. ---
  for (ProgramStep &Step : NewSteps) {
    Step.Dst = View.ValueSlots[Step.Id];
    switch (Step.Op) {
    case Opcode::FusedLastLift:
      // ArgSlot[0] gathers the fused last's reset; the rest follow.
      Step.ArgSlot[0] = View.ValueSlots[Step.Args[1]];
      for (unsigned I = 1; I != Step.NumArgs; ++I)
        Step.ArgSlot[I] = View.ValueSlots[Step.Args[I + 1]];
      Step.Aux = LastIndex[Step.Args[0]];
      break;
    case Opcode::Last:
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        Step.ArgSlot[I] = View.ValueSlots[Step.Args[I]];
      Step.Aux = LastIndex[Step.Args[0]];
      break;
    case Opcode::Delay:
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        Step.ArgSlot[I] = View.ValueSlots[Step.Args[I]];
      Step.Aux = DelayIndex[Step.Id];
      break;
    default:
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        Step.ArgSlot[I] = View.ValueSlots[Step.Args[I]];
      break;
    }
  }
  View.Steps = std::move(NewSteps);

  // --- Output slots against the new layout (entries all stay: a folded
  // output simply reads the never-present dead slot). ---
  for (OutputSlot &O : View.Outputs)
    O.ValueSlot = View.ValueSlots[O.Id];

  return true;
}

} // namespace

std::unique_ptr<Pass> opt::createDeadStepEliminationPass() {
  return std::make_unique<DeadStepElim>();
}
