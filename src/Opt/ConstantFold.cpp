//===- Opt/ConstantFold.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Clock-aware constant propagation and folding. The pass computes, from
// the original spec, a least-fixpoint lattice state per stream:
//
//   Never     — the stream provably never carries an event;
//   Const(v)  — the stream carries exactly one event, at timestamp 0,
//               with value v (a unit-clock constant);
//   Varies    — anything else.
//
// The transfer functions respect the builtins' event semantics (AND for
// plain lifts, OR for merge, first-and-any-rest for option lifts, the
// value-dependent filter), so a fold never changes *when* a stream fires:
// a step is only rewritten to `Const` when its single event provably sits
// at timestamp 0, and to `Skip` when it provably never fires.
//
// Two refinements make the pass bite on real specs, where the flattener
// desugars every literal operand into a *held* constant
// `merge(c, last(c, trigger))`:
//
//  * the ConstTick peephole collapses that whole pattern into one opcode
//    carrying the constant and the trigger;
//  * trigger retargeting then walks the trigger through `time` steps and
//    through `last(v, r)` steps whose value side is provably initialized
//    at timestamp 0 (TriggerAnalysis::alwaysInitialized) — both exact,
//    because ConstTick fires unconditionally at timestamp 0 and `last`
//    past initialization fires exactly with its reset.
//
// Aggregate-valued constants are propagated through the lattice (so e.g.
// setSize(<const set>) folds to an integer) but never materialized into a
// rewritten step: a Const step's payload would be shared across every
// session of a MonitorFleet, which destructive updates must never see.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

#include <unordered_map>

using namespace tessla;
using namespace tessla::opt;

namespace {

enum class Rank : uint8_t { Never, Const, Varies };

struct LatticeState {
  Rank R = Rank::Never;
  Value V; // Const only
};

class ConstantFold : public Pass {
public:
  std::string_view name() const override { return "constant-fold"; }

  bool run(Program &P, AnalysisResult &A, PassStatistics &Stats,
           DiagnosticEngine &Diags) override;

private:
  const Spec *S = nullptr;
  std::vector<LatticeState> St;

  LatticeState never() const { return {Rank::Never, Value()}; }
  LatticeState varies() const { return {Rank::Varies, Value()}; }
  LatticeState constant(Value V) const {
    return {Rank::Const, std::move(V)};
  }

  LatticeState transfer(StreamId Id) const;
  LatticeState transferLift(const StreamDef &D) const;
  void computeFixpoint();
};

LatticeState ConstantFold::transferLift(const StreamDef &D) const {
  switch (builtinInfo(D.Fn).Events) {
  case EventSemantics::All: {
    bool AllConst = true;
    for (StreamId A : D.Args) {
      if (St[A].R == Rank::Never)
        return never();
      AllConst = AllConst && St[A].R == Rank::Const;
    }
    if (!AllConst || D.Args.empty())
      return varies();
    const Value *Args[3];
    for (size_t I = 0; I != D.Args.size(); ++I)
      Args[I] = &St[D.Args[I]].V;
    EvalError Err;
    Value R = applyBuiltin(D.Fn, Args,
                           static_cast<unsigned>(D.Args.size()), false,
                           Err);
    // A statically-failing evaluation (div by zero, ...) must keep
    // failing at run time — leave the step alone.
    return Err.Failed ? varies() : constant(std::move(R));
  }
  case EventSemantics::Any: {
    // merge: the first present argument wins; Never arguments are
    // transparent.
    const LatticeState *First = nullptr;
    for (StreamId A : D.Args) {
      if (St[A].R == Rank::Never)
        continue;
      if (St[A].R == Rank::Varies)
        return varies();
      if (!First)
        First = &St[A];
    }
    return First ? constant(First->V) : never();
  }
  case EventSemantics::FirstAndAnyRest: {
    if (St[D.Args[0]].R == Rank::Never)
      return never();
    bool AnyRest = false, AnyVaries = St[D.Args[0]].R == Rank::Varies;
    for (size_t I = 1; I != D.Args.size(); ++I) {
      if (St[D.Args[I]].R != Rank::Never)
        AnyRest = true;
      if (St[D.Args[I]].R == Rank::Varies)
        AnyVaries = true;
    }
    if (!AnyRest)
      return never();
    if (AnyVaries)
      return varies();
    // All timestamp-0 events; absent (Never) rest arguments evaluate as
    // null, exactly like the interpreter's partial-presence call.
    const Value *Args[3] = {nullptr, nullptr, nullptr};
    for (size_t I = 0; I != D.Args.size(); ++I)
      if (St[D.Args[I]].R == Rank::Const)
        Args[I] = &St[D.Args[I]].V;
    EvalError Err;
    Value R = applyBuiltin(D.Fn, Args,
                           static_cast<unsigned>(D.Args.size()), false,
                           Err);
    return Err.Failed ? varies() : constant(std::move(R));
  }
  case EventSemantics::Custom: {
    // filter(a, c): value-dependent, but a statically-constant condition
    // decides it.
    const LatticeState &Val = St[D.Args[0]];
    const LatticeState &Cond = St[D.Args[1]];
    if (Val.R == Rank::Never || Cond.R == Rank::Never)
      return never();
    if (Cond.R == Rank::Const && Cond.V.kind() == Value::Kind::Bool) {
      if (!Cond.V.getBool())
        return never();
      return Val.R == Rank::Const ? constant(Val.V) : varies();
    }
    return varies();
  }
  }
  return varies();
}

LatticeState ConstantFold::transfer(StreamId Id) const {
  const StreamDef &D = S->stream(Id);
  switch (D.Kind) {
  case StreamKind::Input:
    return varies();
  case StreamKind::Nil:
    return never();
  case StreamKind::Unit:
    return constant(Value::unit());
  case StreamKind::Const:
    return constant(Value::fromLiteral(D.Literal));
  case StreamKind::Time: {
    const LatticeState &A0 = St[D.Args[0]];
    if (A0.R == Rank::Never)
      return never();
    if (A0.R == Rank::Const)
      return constant(Value::integer(0));
    return varies();
  }
  case StreamKind::Lift:
    return transferLift(D);
  case StreamKind::Last: {
    // last(v, r) fires at r's events past timestamp 0, once v has a
    // previous value. If v never fires there is nothing to remember; if
    // r fires only at timestamp 0 the slot is still uninitialized during
    // that calculation (last is *strictly* last), so the stream is
    // silent either way.
    const LatticeState &V = St[D.Args[0]];
    const LatticeState &R = St[D.Args[1]];
    if (V.R == Rank::Never || R.R != Rank::Varies)
      return never();
    return varies();
  }
  case StreamKind::Delay: {
    // delay(d, r) arms off a reset (an r event or its own), so if r
    // never fires the timer is never armed, by induction from the
    // unarmed start; if d never fires arming always cancels.
    if (St[D.Args[0]].R == Rank::Never || St[D.Args[1]].R == Rank::Never)
      return never();
    return varies();
  }
  }
  return varies();
}

void ConstantFold::computeFixpoint() {
  St.assign(S->numStreams(), LatticeState());
  // Least fixpoint from bottom (= Never). Recursion only passes through
  // last/delay back edges, so the chain height is small; the bound is a
  // safety net, and states only move up the Never < Const < Varies
  // order (a changed Const value widens to Varies).
  for (uint32_t Iter = 0; Iter != S->numStreams() + 2; ++Iter) {
    bool Changed = false;
    for (StreamId Id = 0; Id != S->numStreams(); ++Id) {
      LatticeState New = transfer(Id);
      LatticeState &Old = St[Id];
      if (New.R == Old.R &&
          (New.R != Rank::Const || New.V == Old.V))
        continue;
      if (New.R < Old.R ||
          (New.R == Rank::Const && Old.R == Rank::Const))
        New = varies();
      Old = std::move(New);
      Changed = true;
    }
    if (!Changed)
      break;
  }
}

bool ConstantFold::run(Program &P, AnalysisResult &A, PassStatistics &Stats,
                       DiagnosticEngine &Diags) {
  (void)Diags;
  S = &P.spec();
  computeFixpoint();

  Program::OptView View = P.optView();
  std::unordered_map<StreamId, size_t> StepOf;
  for (size_t I = 0; I != View.Steps.size(); ++I)
    StepOf[View.Steps[I].Id] = I;
  auto stepFor = [&](StreamId Id) -> ProgramStep * {
    auto It = StepOf.find(Id);
    return It == StepOf.end() ? nullptr : &View.Steps[It->second];
  };

  uint32_t Folded = 0;

  // --- Rewrite provably-silent and unit-clock-constant steps. ---
  for (ProgramStep &Step : View.Steps) {
    const LatticeState &X = St[Step.Id];
    if (X.R == Rank::Never && Step.Op != Opcode::Skip) {
      Step.Op = Opcode::Skip;
      Step.Impl = nullptr;
      Step.InPlace = false;
      Step.NumArgs = 0;
      Step.Args.clear();
      Step.Folded = true;
      ++Folded;
    } else if (X.R == Rank::Const && !X.V.isAggregate() &&
               Step.Op != Opcode::Const && Step.Op != Opcode::Skip) {
      Step.Op = Opcode::Const;
      Step.ConstVal = X.V;
      Step.Impl = nullptr;
      Step.InPlace = false;
      Step.NumArgs = 0;
      Step.Args.clear();
      Step.Folded = true;
      ++Folded;
    }
  }

  // --- Prune merge arguments that are provably silent or duplicated
  // (later occurrences of one stream can never win over the first). ---
  for (ProgramStep &Step : View.Steps) {
    if (Step.Op != Opcode::LiftMerge)
      continue;
    std::vector<StreamId> Kept;
    for (StreamId Arg : Step.Args) {
      bool Duplicate = false;
      for (StreamId Prev : Kept)
        Duplicate = Duplicate || Prev == Arg;
      if (!Duplicate && St[Arg].R != Rank::Never)
        Kept.push_back(Arg);
    }
    if (Kept.size() == Step.Args.size())
      continue;
    Step.Args = std::move(Kept);
    Step.NumArgs = static_cast<uint8_t>(Step.Args.size());
    for (unsigned I = 0; I != Step.NumArgs; ++I)
      Step.ArgSlot[I] = P.valueSlot(Step.Args[I]);
    ++Folded;
  }

  // --- ConstTick: collapse the flattener's held-constant pattern
  // merge(c, last(c, t)) into one step, then retarget the trigger
  // through steps that fire in lockstep with it. ---
  TriggerAnalysis &Triggers = A.triggers();
  for (ProgramStep &Step : View.Steps) {
    if (Step.Op != Opcode::LiftMerge || Step.NumArgs != 2)
      continue;
    const ProgramStep *C = stepFor(Step.Args[0]);
    const ProgramStep *L = stepFor(Step.Args[1]);
    if (!C || !L || C->Op != Opcode::Const || C->ConstVal.isAggregate() ||
        L->Op != Opcode::Last || L->Args[0] != Step.Args[0])
      continue;
    StreamId Trigger = L->Args[1];
    // Exact retargeting: time(s) fires with s, and an initialized
    // last(v, r) fires with r past timestamp 0 — where ConstTick fires
    // unconditionally anyway.
    for (;;) {
      const ProgramStep *T = stepFor(Trigger);
      if (!T)
        break;
      if (T->Op == Opcode::Time)
        Trigger = T->Args[0];
      else if (T->Op == Opcode::Last &&
               Triggers.alwaysInitialized(T->Args[0]))
        Trigger = T->Args[1];
      else
        break;
    }
    Step.Op = Opcode::ConstTick;
    Step.ConstVal = C->ConstVal;
    Step.Args = {Trigger};
    Step.NumArgs = 1;
    Step.ArgSlot[0] = P.valueSlot(Trigger);
    Step.Folded = true;
    ++Folded;
  }

  Stats.Folded = Folded;
  return true;
}

} // namespace

std::unique_ptr<Pass> opt::createConstantFoldPass() {
  return std::make_unique<ConstantFold>();
}
