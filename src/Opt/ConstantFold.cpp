//===- Opt/ConstantFold.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Clock-aware constant propagation and folding, driven entirely by the
// abstract-interpretation fact store (Analysis/AbsInt.h): the pass owns
// no lattice of its own anymore. Rewrites:
//
//  * a provably-silent stream (tick = Never) becomes a Skip;
//  * a unit-clock constant (exactly one event, at timestamp 0, with a
//    statically known scalar value) becomes a Const step;
//  * merge arguments that are silent or duplicated are pruned;
//  * the flattener's held-constant pattern merge(c, last(c, t))
//    collapses into one ConstTick step, with the trigger retargeted
//    through lockstep steps (time, initialized last);
//  * a filter whose condition provably carries `true` on a clock
//    dominating the value side is clock-exact — it degenerates to the
//    value stream itself (a single-argument merge).
//
// The last rewrite is where the framework is strictly wider than the
// old self-contained lattice: "provably true" is an interval fact (for
// example `x == x` over an Int stream), and the domination side
// condition is a clock-calculus implication — neither was expressible
// in the pass-private Never/Const/Varies lattice.
//
// Aggregate-valued constants are propagated through the fact store (so
// e.g. setSize(<const set>) folds to an integer) but never materialized
// into a rewritten step: a Const step's payload would be shared across
// every session of a MonitorFleet, which destructive updates must never
// see.
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

#include <unordered_map>

using namespace tessla;
using namespace tessla::opt;

namespace {

class ConstantFold : public Pass {
public:
  std::string_view name() const override { return "constant-fold"; }

  bool run(Program &P, AnalysisResult &A, absint::AnalysisFacts &Facts,
           PassStatistics &Stats, DiagnosticEngine &Diags) override;
};

bool ConstantFold::run(Program &P, AnalysisResult &A,
                       absint::AnalysisFacts &Facts, PassStatistics &Stats,
                       DiagnosticEngine &Diags) {
  (void)A;
  (void)Diags;

  Program::OptView View = P.optView();
  std::unordered_map<StreamId, size_t> StepOf;
  for (size_t I = 0; I != View.Steps.size(); ++I)
    StepOf[View.Steps[I].Id] = I;
  auto stepFor = [&](StreamId Id) -> ProgramStep * {
    auto It = StepOf.find(Id);
    return It == StepOf.end() ? nullptr : &View.Steps[It->second];
  };

  uint32_t Folded = 0;

  // --- Rewrite provably-silent and unit-clock-constant steps. ---
  for (ProgramStep &Step : View.Steps) {
    const Value *Known = Facts.knownValue(Step.Id);
    if (!Facts.canFire(Step.Id) && Step.Op != Opcode::Skip) {
      Step.Op = Opcode::Skip;
      Step.Impl = nullptr;
      Step.InPlace = false;
      Step.NumArgs = 0;
      Step.Args.clear();
      Step.Folded = true;
      ++Folded;
    } else if (Facts.unitClock(Step.Id) && Known && !Known->isAggregate() &&
               Step.Op != Opcode::Const && Step.Op != Opcode::Skip) {
      Step.Op = Opcode::Const;
      Step.ConstVal = *Known;
      Step.Impl = nullptr;
      Step.InPlace = false;
      Step.NumArgs = 0;
      Step.Args.clear();
      Step.Folded = true;
      ++Folded;
    }
  }

  // --- Prune merge arguments that are provably silent or duplicated
  // (later occurrences of one stream can never win over the first). ---
  for (ProgramStep &Step : View.Steps) {
    if (Step.Op != Opcode::LiftMerge)
      continue;
    std::vector<StreamId> Kept;
    for (StreamId Arg : Step.Args) {
      bool Duplicate = false;
      for (StreamId Prev : Kept)
        Duplicate = Duplicate || Prev == Arg;
      if (!Duplicate && Facts.canFire(Arg))
        Kept.push_back(Arg);
    }
    if (Kept.size() == Step.Args.size())
      continue;
    Step.Args = std::move(Kept);
    Step.NumArgs = static_cast<uint8_t>(Step.Args.size());
    for (unsigned I = 0; I != Step.NumArgs; ++I)
      Step.ArgSlot[I] = P.valueSlot(Step.Args[I]);
    ++Folded;
  }

  // --- ConstTick: collapse the flattener's held-constant pattern
  // merge(c, last(c, t)) into one step, then retarget the trigger
  // through steps that fire in lockstep with it. ---
  for (ProgramStep &Step : View.Steps) {
    if (Step.Op != Opcode::LiftMerge || Step.NumArgs != 2)
      continue;
    const ProgramStep *C = stepFor(Step.Args[0]);
    const ProgramStep *L = stepFor(Step.Args[1]);
    if (!C || !L || C->Op != Opcode::Const || C->ConstVal.isAggregate() ||
        L->Op != Opcode::Last || L->Args[0] != Step.Args[0])
      continue;
    StreamId Trigger = L->Args[1];
    // Exact retargeting: time(s) fires with s, and an initialized
    // last(v, r) fires with r past timestamp 0 — where ConstTick fires
    // unconditionally anyway.
    for (;;) {
      const ProgramStep *T = stepFor(Trigger);
      if (!T)
        break;
      if (T->Op == Opcode::Time)
        Trigger = T->Args[0];
      else if (T->Op == Opcode::Last &&
               Facts.alwaysInitialized(T->Args[0]))
        Trigger = T->Args[1];
      else
        break;
    }
    Step.Op = Opcode::ConstTick;
    Step.ConstVal = C->ConstVal;
    Step.Args = {Trigger};
    Step.NumArgs = 1;
    Step.ArgSlot[0] = P.valueSlot(Trigger);
    Step.Folded = true;
    ++Folded;
  }

  // --- Clock-exact filter: the condition provably carries `true` and
  // provably accompanies every value event (ev(a) subset of ev(c),
  // timestamp 0 included), so filter(a, c) is exactly a. ---
  for (ProgramStep &Step : View.Steps) {
    if (Step.Op != Opcode::LiftFilter)
      continue;
    StreamId A0 = Step.Args[0], C0 = Step.Args[1];
    const Value *CK = Facts.knownValue(C0);
    bool CondTrue = Facts.range(C0).alwaysTrue() ||
                    (CK && CK->kind() == Value::Kind::Bool && CK->getBool());
    if (!CondTrue || !Facts.clockSubsetIncl0(A0, C0))
      continue;
    Step.Op = Opcode::LiftMerge;
    Step.Fn = BuiltinId::Merge;
    Step.Impl = nullptr;
    Step.InPlace = false;
    Step.NumArgs = 1;
    Step.Args = {A0};
    Step.ArgSlot[0] = P.valueSlot(A0);
    Step.Folded = true;
    ++Folded;
  }

  Stats.Folded = Folded;
  return true;
}

} // namespace

std::unique_ptr<Pass> opt::createConstantFoldPass() {
  return std::make_unique<ConstantFold>();
}
