//===- Opt/StepFusion.cpp ---------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// Peephole fusion of adjacent steps into the single fused opcodes the
// interpreter and the C++ emitter execute directly:
//
//  * last→lift: a LiftAll consumer whose first argument is a `last` step
//    reads the last slot itself (FusedLastLift). The fused firing guard
//    — reset present, slot initialized, rest present — is *literally*
//    the conjunction of the two original guards, and last-slot contents
//    only change at the end of a timestamp, so this is exact for every
//    consumer independently; the producer stays for any remaining
//    consumers and dead-step elimination reaps it when orphaned.
//
//  * lift→lift: a LiftAll producer with exactly one use inlines into its
//    LiftAll consumer (FusedLiftLift). The producer's evaluator runs
//    whenever the producer's own arguments are present — even when the
//    consumer's rest is absent — so destructive aggregate updates and
//    runtime errors happen exactly as in the unfused program. Moving
//    that evaluation down to the consumer's position is observable only
//    through aggregates the producer touches; the fusion is rejected if
//    any step in between touches one of those aggregate families (the
//    mutability analysis' read-before-write ordering makes this rare).
//
//===----------------------------------------------------------------------===//

#include "tessla/Opt/PassManager.h"

#include <unordered_map>

using namespace tessla;
using namespace tessla::opt;

namespace {

class StepFusion : public Pass {
public:
  std::string_view name() const override { return "step-fusion"; }

  bool run(Program &P, AnalysisResult &A, absint::AnalysisFacts &Facts,
           PassStatistics &Stats, DiagnosticEngine &Diags) override;
};

bool StepFusion::run(Program &P, AnalysisResult &A,
                     absint::AnalysisFacts &Facts, PassStatistics &Stats,
                     DiagnosticEngine &Diags) {
  (void)Diags;
  const Spec &S = P.spec();
  Program::OptView View = P.optView();

  std::unordered_map<StreamId, size_t> StepOf;
  for (size_t I = 0; I != View.Steps.size(); ++I)
    StepOf[View.Steps[I].Id] = I;

  // Uses per stream: every step operand plus the output table. Last
  // sources and delay operands are step operands of their own steps, so
  // a refcount of one means "read by exactly one consumer step and
  // nothing else".
  std::vector<uint32_t> Refs(S.numStreams(), 0);
  for (const ProgramStep &Step : View.Steps)
    for (StreamId Arg : Step.Args)
      ++Refs[Arg];
  for (const OutputSlot &O : View.Outputs)
    ++Refs[O.Id];

  const MutabilityResult &Mut = A.mutability();

  uint32_t Fused = 0;
  for (size_t CI = 0; CI != View.Steps.size(); ++CI) {
    ProgramStep &C = View.Steps[CI];
    if (C.Op != Opcode::LiftAll || C.NumArgs == 0)
      continue;
    // A provably-silent consumer is constant-fold/dead-step territory;
    // fusing it would only pin its operands' slots for nothing.
    if (!Facts.canFire(C.Id))
      continue;
    auto PIt = StepOf.find(C.Args[0]);
    // Translation order puts a step's operands before it; anything else
    // would make the in-between scan below meaningless.
    if (PIt == StepOf.end() || PIt->second >= CI)
      continue;
    ProgramStep &Producer = View.Steps[PIt->second];

    if (Producer.Op == Opcode::Last) {
      // Exact for any number of consumers of the last.
      std::vector<StreamId> NewArgs;
      NewArgs.push_back(Producer.Args[0]); // v — feeds the last slot
      NewArgs.push_back(Producer.Args[1]); // r — the firing guard
      for (unsigned I = 1; I != C.NumArgs; ++I)
        NewArgs.push_back(C.Args[I]);
      C.Op = Opcode::FusedLastLift;
      C.FusedId = Producer.Id;
      C.Aux = Producer.Aux;
      C.ArgSlot[0] = P.valueSlot(Producer.Args[1]);
      for (unsigned I = 1; I != C.NumArgs; ++I)
        C.ArgSlot[I] = P.valueSlot(NewArgs[I + 1]);
      --Refs[Producer.Id];
      ++Refs[Producer.Args[0]];
      ++Refs[Producer.Args[1]];
      C.Args = std::move(NewArgs);
      ++Fused;
      continue;
    }

    if (Producer.Op != Opcode::LiftAll || Refs[Producer.Id] != 1)
      continue;
    unsigned TotalArgs = Producer.NumArgs + (C.NumArgs - 1u);
    if (TotalArgs > 3)
      continue;

    // Reject the fusion when moving the producer's evaluation down to
    // the consumer could be observed through a shared aggregate: no
    // step strictly between the two may touch an aggregate family the
    // producer reads or writes.
    bool Blocked = false;
    std::vector<uint32_t> Families;
    for (StreamId Arg : Producer.Args)
      if (S.stream(Arg).Ty.isComplex())
        Families.push_back(Mut.FamilyRep[Arg]);
    if (!Families.empty()) {
      for (size_t I = PIt->second + 1; I != CI && !Blocked; ++I) {
        const ProgramStep &Mid = View.Steps[I];
        auto Touches = [&](StreamId Id) {
          if (!S.stream(Id).Ty.isComplex())
            return false;
          for (uint32_t F : Families)
            if (Mut.FamilyRep[Id] == F)
              return true;
          return false;
        };
        Blocked = Touches(Mid.Id);
        for (StreamId Arg : Mid.Args)
          Blocked = Blocked || Touches(Arg);
      }
    }
    if (Blocked)
      continue;

    std::vector<StreamId> NewArgs(Producer.Args);
    for (unsigned I = 1; I != C.NumArgs; ++I)
      NewArgs.push_back(C.Args[I]);
    SlotId NewSlots[3] = {0, 0, 0};
    for (unsigned I = 0; I != TotalArgs; ++I)
      NewSlots[I] = P.valueSlot(NewArgs[I]);

    C.Op = Opcode::FusedLiftLift;
    C.Impl2 = Producer.Impl;
    C.Fn2 = Producer.Fn;
    C.InPlace2 = Producer.InPlace;
    C.FusedArity = Producer.NumArgs;
    C.FusedId = Producer.Id;
    C.Args = std::move(NewArgs);
    C.NumArgs = static_cast<uint8_t>(TotalArgs);
    for (unsigned I = 0; I != TotalArgs; ++I)
      C.ArgSlot[I] = NewSlots[I];

    // Neutralize the producer right away so the pipeline stays correct
    // at this pass boundary (its evaluator must not run twice); its
    // argument uses conceptually move into the consumer, so refcounts
    // of the arguments are unchanged.
    --Refs[Producer.Id];
    Producer.Op = Opcode::Skip;
    Producer.Impl = nullptr;
    Producer.InPlace = false;
    Producer.NumArgs = 0;
    Producer.Args.clear();
    ++Fused;
  }

  Stats.Fused = Fused;
  return true;
}

} // namespace

std::unique_ptr<Pass> opt::createStepFusionPass() {
  return std::make_unique<StepFusion>();
}
