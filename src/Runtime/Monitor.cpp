//===- Runtime/Monitor.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Monitor.h"

#include "tessla/Runtime/ExecutionEngine.h"
#include "tessla/Support/Format.h"

#include <cassert>
#include <limits>

using namespace tessla;

Monitor::Monitor(const Program &Prog_) : Prog(Prog_) {
  // +1: the shared dead slot of nil streams stays never-present.
  uint32_t N = Prog.numValueSlots() + 1u;
  Cur.resize(N);
  Present.assign(N, 0);
  LastVal.resize(Prog.lastSlots().size());
  LastInit.assign(Prog.lastSlots().size(), 0);
  NextTs.assign(Prog.delays().size(), 0);
  NextTsSet.assign(Prog.delays().size(), 0);
}

void Monitor::failAt(Time Ts, StreamId Id, const std::string &Message) {
  Err.fail(formatString("at t=%lld, stream '%s': %s",
                        static_cast<long long>(Ts),
                        Prog.spec().stream(Id).Name.c_str(),
                        Message.c_str()));
}

void Monitor::setValue(SlotId Slot, Value V) {
  Cur[Slot] = std::move(V);
  if (!Present[Slot]) {
    Present[Slot] = 1;
    Touched.push_back(Slot);
  }
}

std::optional<Time> Monitor::minNextDelay() const {
  std::optional<Time> Min;
  for (size_t I = 0, E = NextTs.size(); I != E; ++I)
    if (NextTsSet[I] && (!Min || NextTs[I] < *Min))
      Min = NextTs[I];
  return Min;
}

void Monitor::runCalc(Time Ts) {
  ++NumCalcRuns;

  // --- Calculation section (§III-A), in translation order: one flat
  // dispatch per step over pre-resolved slots and function pointers. ---
  for (const ProgramStep &Step : Prog.steps()) {
    if (Err.Failed)
      return;
    switch (Step.Op) {
    case Opcode::Skip:
      break; // inputs were buffered by feed(); nil never fires
    case Opcode::Const:
      if (Ts == 0)
        setValue(Step.Dst, Step.ConstVal);
      break;
    case Opcode::Time:
      if (Present[Step.ArgSlot[0]])
        setValue(Step.Dst, Value::integer(Ts));
      break;
    case Opcode::Last:
      if (Present[Step.ArgSlot[1]] && LastInit[Step.Aux])
        setValue(Step.Dst, LastVal[Step.Aux]);
      break;
    case Opcode::Delay:
      if (NextTsSet[Step.Aux] && NextTs[Step.Aux] == Ts)
        setValue(Step.Dst, Value::unit());
      break;
    case Opcode::LiftAll: {
      const Value *Args[3];
      bool AllPresent = true;
      for (unsigned I = 0; I != Step.NumArgs; ++I) {
        if (!Present[Step.ArgSlot[I]]) {
          AllPresent = false;
          break;
        }
        Args[I] = &Cur[Step.ArgSlot[I]];
      }
      if (!AllPresent)
        break;
      Value Result = Step.Impl(Args, Step.InPlace, Err);
      if (Err.Failed) {
        failAt(Ts, Step.Id, Err.Message);
        return;
      }
      setValue(Step.Dst, std::move(Result));
      break;
    }
    case Opcode::LiftMerge:
      // merge: the first stream's event wins (f_merge, §II).
      for (unsigned I = 0; I != Step.NumArgs; ++I)
        if (Present[Step.ArgSlot[I]]) {
          setValue(Step.Dst, Cur[Step.ArgSlot[I]]);
          break;
        }
      break;
    case Opcode::LiftFirstRest: {
      if (!Present[Step.ArgSlot[0]])
        break;
      const Value *Args[3] = {nullptr, nullptr, nullptr};
      bool AnyRest = false;
      Args[0] = &Cur[Step.ArgSlot[0]];
      for (unsigned I = 1; I != Step.NumArgs; ++I)
        if (Present[Step.ArgSlot[I]]) {
          Args[I] = &Cur[Step.ArgSlot[I]];
          AnyRest = true;
        }
      if (!AnyRest)
        break;
      Value Result = Step.Impl(Args, Step.InPlace, Err);
      if (Err.Failed) {
        failAt(Ts, Step.Id, Err.Message);
        return;
      }
      setValue(Step.Dst, std::move(Result));
      break;
    }
    case Opcode::LiftFilter: {
      // filter(a, c): pass a's event iff c is currently true.
      if (!Present[Step.ArgSlot[0]] || !Present[Step.ArgSlot[1]])
        break;
      const Value &Cond = Cur[Step.ArgSlot[1]];
      if (Cond.kind() != Value::Kind::Bool) {
        failAt(Ts, Step.Id, "filter condition is not a Bool");
        return;
      }
      if (Cond.getBool())
        setValue(Step.Dst, Cur[Step.ArgSlot[0]]);
      break;
    }
    case Opcode::ConstTick:
      // Collapsed held constant: fires at timestamp 0 and with every
      // trigger event, always carrying the same scalar.
      if (Ts == 0 || Present[Step.ArgSlot[0]])
        setValue(Step.Dst, Step.ConstVal);
      break;
    case Opcode::FusedLastLift: {
      // Consumer lift with a fused last(v, r) as first argument: fires
      // when r fires, the last slot is initialized, and the remaining
      // arguments are present — byte-identical to the unfused pair.
      if (!Present[Step.ArgSlot[0]] || !LastInit[Step.Aux])
        break;
      const Value *Args[3];
      Args[0] = &LastVal[Step.Aux];
      bool AllPresent = true;
      for (unsigned I = 1; I != Step.NumArgs; ++I) {
        if (!Present[Step.ArgSlot[I]]) {
          AllPresent = false;
          break;
        }
        Args[I] = &Cur[Step.ArgSlot[I]];
      }
      if (!AllPresent)
        break;
      Value Result = Step.Impl(Args, Step.InPlace, Err);
      if (Err.Failed) {
        failAt(Ts, Step.Id, Err.Message);
        return;
      }
      setValue(Step.Dst, std::move(Result));
      break;
    }
    case Opcode::FusedLiftLift: {
      // Consumer lift with its single-consumer producer inlined. The
      // producer is evaluated whenever *its* arguments are present —
      // even if the consumer's rest is absent — so destructive updates
      // and error behavior match the unfused program exactly; the
      // temporary is simply discarded when the consumer cannot fire.
      const Value *Inner[3];
      bool InnerPresent = true;
      for (unsigned I = 0; I != Step.FusedArity; ++I) {
        if (!Present[Step.ArgSlot[I]]) {
          InnerPresent = false;
          break;
        }
        Inner[I] = &Cur[Step.ArgSlot[I]];
      }
      if (!InnerPresent)
        break;
      Value Tmp = Step.Impl2(Inner, Step.InPlace2, Err);
      if (Err.Failed) {
        failAt(Ts, Step.FusedId, Err.Message);
        return;
      }
      const Value *Args[3];
      Args[0] = &Tmp;
      bool AllPresent = true;
      for (unsigned I = Step.FusedArity; I != Step.NumArgs; ++I) {
        if (!Present[Step.ArgSlot[I]]) {
          AllPresent = false;
          break;
        }
        Args[1 + I - Step.FusedArity] = &Cur[Step.ArgSlot[I]];
      }
      if (!AllPresent)
        break;
      Value Result = Step.Impl(Args, Step.InPlace, Err);
      if (Err.Failed) {
        failAt(Ts, Step.Id, Err.Message);
        return;
      }
      setValue(Step.Dst, std::move(Result));
      break;
    }
    }
  }

  // --- Emit outputs. ---
  if (Handler) {
    for (const OutputSlot &Out : Prog.outputs())
      if (Present[Out.ValueSlot]) {
        ++NumOutputs;
        Handler(Ts, Out.Id, Cur[Out.ValueSlot]);
      }
  } else {
    for (const OutputSlot &Out : Prog.outputs())
      if (Present[Out.ValueSlot])
        ++NumOutputs;
  }

  // --- End of calculation: update *_last slots (§III-A). ---
  for (size_t I = 0, E = Prog.lastSlots().size(); I != E; ++I) {
    SlotId V = Prog.lastSlots()[I].ValueSlot;
    if (Present[V]) {
      LastVal[I] = Cur[V];
      LastInit[I] = 1;
    }
  }

  // --- Delay scheduling (§III-B): an event of the reset stream or the
  // delay itself is a reset; with a delays-value event it re-arms the
  // timer, without one it cancels it. ---
  for (size_t I = 0, E = Prog.delays().size(); I != E; ++I) {
    const DelaySlot &D = Prog.delays()[I];
    bool ResetEvent = Present[D.ResetSlot] || Present[D.ValueSlot];
    if (!ResetEvent)
      continue;
    if (Present[D.DelaysSlot]) {
      int64_t Amount = Cur[D.DelaysSlot].getInt();
      if (Amount <= 0) {
        failAt(Ts, D.Id, "delay amounts must be positive");
        return;
      }
      NextTs[I] = Ts + Amount;
      NextTsSet[I] = 1;
    } else {
      NextTsSet[I] = 0;
    }
  }

  // --- Reset current-value slots for the next timestamp. ---
  for (SlotId Slot : Touched) {
    Present[Slot] = 0;
    Cur[Slot] = Value(); // release aggregate handles promptly
  }
  Touched.clear();
}

void Monitor::flushBefore(Time T) {
  if (!CalcDoneForPending) {
    runCalc(PendingTs);
    CalcDoneForPending = true;
  }
  while (!Err.Failed) {
    std::optional<Time> Min = minNextDelay();
    if (!Min || *Min >= T)
      return;
    runCalc(*Min);
  }
}

bool Monitor::feed(StreamId Input, Time Ts, Value V) {
  if (Err.Failed)
    return false;
  if (Finished) {
    Err.fail("feed() after finish()");
    return false;
  }
  assert(Prog.spec().stream(Input).Kind == StreamKind::Input &&
         "feed() targets must be input streams");
  SlotId Slot = Prog.valueSlot(Input);
  if (Ts < 0) {
    failAt(Ts, Input, "timestamps must be non-negative");
    return false;
  }
  if (Ts < PendingTs || (CalcDoneForPending && Ts == PendingTs)) {
    failAt(Ts, Input, "input events must arrive in timestamp order");
    return false;
  }
  if (Ts > PendingTs) {
    flushBefore(Ts);
    if (Err.Failed)
      return false;
    PendingTs = Ts;
    CalcDoneForPending = false;
  } else if (Present[Slot]) {
    failAt(Ts, Input, "two events on one stream at the same timestamp");
    return false;
  }
  setValue(Slot, std::move(V));
  ++NumFed;
  return true;
}

void Monitor::finish(std::optional<Time> Horizon) {
  if (Err.Failed || Finished)
    return;
  Time Bound = Horizon ? (*Horizon == std::numeric_limits<Time>::max()
                              ? *Horizon
                              : *Horizon + 1)
                       : std::numeric_limits<Time>::max();
  flushBefore(Bound);
  Finished = true;
}

void Monitor::extractState(EngineLaneState &Out) {
  Out.PendingTs = PendingTs;
  Out.CalcDone = CalcDoneForPending;
  Out.Failed = Err.Failed;
  Out.Error = std::move(Err.Message);
  Out.NumFed = NumFed;
  Out.NumOutputs = NumOutputs;
  Out.NumCalcRuns = NumCalcRuns;
  Out.Cur = std::move(Cur);
  Out.Present = std::move(Present);
  Out.LastVal = std::move(LastVal);
  Out.LastInit = std::move(LastInit);
  Out.NextTs = std::move(NextTs);
  Out.NextTsSet = std::move(NextTsSet);
}

void Monitor::snapshotState(EngineLaneState &Out) const {
  Out.PendingTs = PendingTs;
  Out.CalcDone = CalcDoneForPending;
  Out.Failed = Err.Failed;
  Out.Error = Err.Message;
  Out.NumFed = NumFed;
  Out.NumOutputs = NumOutputs;
  Out.NumCalcRuns = NumCalcRuns;
  Out.Cur = Cur; // O(1) per slot: aggregate handles share structure
  Out.Present = Present;
  Out.LastVal = LastVal;
  Out.LastInit = LastInit;
  Out.NextTs = NextTs;
  Out.NextTsSet = NextTsSet;
}

void Monitor::visitValues(
    const std::function<void(const Value &)> &Fn) const {
  for (const Value &V : Cur)
    Fn(V);
  for (const Value &V : LastVal)
    Fn(V);
}

void Monitor::restoreState(EngineLaneState &State) {
  assert(State.Cur.size() == Prog.numValueSlots() + 1u &&
         "lane snapshot from a different program");
  PendingTs = State.PendingTs;
  CalcDoneForPending = State.CalcDone;
  Err.Failed = State.Failed;
  Err.Message = std::move(State.Error);
  NumFed = State.NumFed;
  NumOutputs = State.NumOutputs;
  NumCalcRuns = State.NumCalcRuns;
  Cur = std::move(State.Cur);
  Present = std::move(State.Present);
  LastVal = std::move(State.LastVal);
  LastInit = std::move(State.LastInit);
  NextTs = std::move(State.NextTs);
  NextTsSet = std::move(State.NextTsSet);
  // The reset order of current-value slots is unobservable; membership
  // is what matters, so Touched is rebuilt from presence.
  Touched.clear();
  for (size_t Slot = 0, E = Present.size(); Slot != E; ++Slot)
    if (Present[Slot])
      Touched.push_back(static_cast<SlotId>(Slot));
}

std::vector<OutputEvent> tessla::runMonitor(
    const Program &Prog,
    const std::vector<std::tuple<StreamId, Time, Value>> &Events,
    std::optional<Time> Horizon, std::string *ErrorOut) {
  Monitor M(Prog);
  std::vector<OutputEvent> Out;
  M.setOutputHandler([&Out](Time Ts, StreamId Id, const Value &V) {
    // The handler's value is borrowed: with the optimization on, the
    // aggregate behind it will be destructively updated at later
    // timestamps. Recording requires a deep copy.
    Out.push_back({Ts, Id, V.deepCopy()});
  });
  for (const auto &[Id, Ts, V] : Events) {
    if (!M.feed(Id, Ts, V))
      break;
  }
  M.finish(Horizon);
  if (ErrorOut)
    *ErrorOut = M.failed() ? M.errorMessage() : "";
  return Out;
}
