//===- Runtime/Monitor.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Monitor.h"

#include "tessla/Support/Format.h"

#include <cassert>
#include <limits>

using namespace tessla;

Monitor::Monitor(const MonitorPlan &Plan_) : Plan(Plan_) {
  uint32_t N = Plan.numStreams();
  Cur.resize(N);
  Present.assign(N, 0);
  LastVal.resize(N);
  LastInit.assign(N, 0);
  NextTs.assign(Plan.delays().size(), 0);
  NextTsSet.assign(Plan.delays().size(), 0);
}

void Monitor::failAt(Time Ts, StreamId Id, const std::string &Message) {
  Err.fail(formatString("at t=%lld, stream '%s': %s",
                        static_cast<long long>(Ts),
                        Plan.spec().stream(Id).Name.c_str(),
                        Message.c_str()));
}

void Monitor::setValue(StreamId Id, Value V) {
  Cur[Id] = std::move(V);
  if (!Present[Id]) {
    Present[Id] = 1;
    Touched.push_back(Id);
  }
}

std::optional<Time> Monitor::minNextDelay() const {
  std::optional<Time> Min;
  for (size_t I = 0, E = NextTs.size(); I != E; ++I)
    if (NextTsSet[I] && (!Min || NextTs[I] < *Min))
      Min = NextTs[I];
  return Min;
}

void Monitor::runCalc(Time Ts) {
  ++NumCalcRuns;

  // --- Calculation section (§III-A), in translation order. ---
  for (const PlanStep &Step : Plan.steps()) {
    if (Err.Failed)
      return;
    switch (Step.Kind) {
    case StreamKind::Input:
    case StreamKind::Nil:
      break; // inputs were buffered by feed(); nil never fires
    case StreamKind::Unit:
    case StreamKind::Const:
      if (Ts == 0)
        setValue(Step.Id, Step.ConstVal);
      break;
    case StreamKind::Time:
      if (Present[Step.Args[0]])
        setValue(Step.Id, Value::integer(Ts));
      break;
    case StreamKind::Last:
      if (Present[Step.Args[1]] && LastInit[Step.Args[0]])
        setValue(Step.Id, LastVal[Step.Args[0]]);
      break;
    case StreamKind::Delay: {
      // NextTs slots are indexed by position in Plan.delays(); find ours.
      // (Linear scan is fine: specs have few delays; cached lookup would
      // complicate the plan for no measurable gain.)
      for (size_t I = 0, E = Plan.delays().size(); I != E; ++I)
        if (Plan.delays()[I].Id == Step.Id) {
          if (NextTsSet[I] && NextTs[I] == Ts)
            setValue(Step.Id, Value::unit());
          break;
        }
      break;
    }
    case StreamKind::Lift: {
      const Value *Args[3] = {nullptr, nullptr, nullptr};
      unsigned NumArgs = static_cast<unsigned>(Step.Args.size());
      switch (Step.Events) {
      case EventSemantics::All: {
        bool AllPresent = true;
        for (unsigned I = 0; I != NumArgs; ++I) {
          if (!Present[Step.Args[I]]) {
            AllPresent = false;
            break;
          }
          Args[I] = &Cur[Step.Args[I]];
        }
        if (!AllPresent)
          break;
        Value Result = applyBuiltin(Step.Fn, Args, NumArgs, Step.InPlace,
                                    Err);
        if (Err.Failed) {
          failAt(Ts, Step.Id, Err.Message);
          return;
        }
        setValue(Step.Id, std::move(Result));
        break;
      }
      case EventSemantics::Any:
        // merge: the first stream's event wins (f_merge, §II).
        for (unsigned I = 0; I != NumArgs; ++I)
          if (Present[Step.Args[I]]) {
            setValue(Step.Id, Cur[Step.Args[I]]);
            break;
          }
        break;
      case EventSemantics::FirstAndAnyRest: {
        if (!Present[Step.Args[0]])
          break;
        bool AnyRest = false;
        Args[0] = &Cur[Step.Args[0]];
        for (unsigned I = 1; I != NumArgs; ++I)
          if (Present[Step.Args[I]]) {
            Args[I] = &Cur[Step.Args[I]];
            AnyRest = true;
          }
        if (!AnyRest)
          break;
        Value Result = applyBuiltin(Step.Fn, Args, NumArgs, Step.InPlace,
                                    Err);
        if (Err.Failed) {
          failAt(Ts, Step.Id, Err.Message);
          return;
        }
        setValue(Step.Id, std::move(Result));
        break;
      }
      case EventSemantics::Custom: {
        // filter(a, c): pass a's event iff c is currently true.
        assert(Step.Fn == BuiltinId::Filter &&
               "only filter has Custom semantics");
        if (!Present[Step.Args[0]] || !Present[Step.Args[1]])
          break;
        const Value &Cond = Cur[Step.Args[1]];
        if (Cond.kind() != Value::Kind::Bool) {
          failAt(Ts, Step.Id, "filter condition is not a Bool");
          return;
        }
        if (Cond.getBool())
          setValue(Step.Id, Cur[Step.Args[0]]);
        break;
      }
      }
      break;
    }
    }
  }

  // --- Emit outputs. ---
  if (Handler) {
    for (StreamId Out : Plan.outputs())
      if (Present[Out]) {
        ++NumOutputs;
        Handler(Ts, Out, Cur[Out]);
      }
  } else {
    for (StreamId Out : Plan.outputs())
      if (Present[Out])
        ++NumOutputs;
  }

  // --- End of calculation: update *_last slots (§III-A). ---
  for (StreamId V : Plan.lastValueSources())
    if (Present[V]) {
      LastVal[V] = Cur[V];
      LastInit[V] = 1;
    }

  // --- Delay scheduling (§III-B): an event of the reset stream or the
  // delay itself is a reset; with a delays-value event it re-arms the
  // timer, without one it cancels it. ---
  for (size_t I = 0, E = Plan.delays().size(); I != E; ++I) {
    const DelayInfo &D = Plan.delays()[I];
    bool ResetEvent = Present[D.ResetArg] || Present[D.Id];
    if (!ResetEvent)
      continue;
    if (Present[D.DelaysArg]) {
      int64_t Amount = Cur[D.DelaysArg].getInt();
      if (Amount <= 0) {
        failAt(Ts, D.Id, "delay amounts must be positive");
        return;
      }
      NextTs[I] = Ts + Amount;
      NextTsSet[I] = 1;
    } else {
      NextTsSet[I] = 0;
    }
  }

  // --- Reset current-value slots for the next timestamp. ---
  for (StreamId Id : Touched) {
    Present[Id] = 0;
    Cur[Id] = Value(); // release aggregate handles promptly
  }
  Touched.clear();
}

void Monitor::flushBefore(Time T) {
  if (!CalcDoneForPending) {
    runCalc(PendingTs);
    CalcDoneForPending = true;
  }
  while (!Err.Failed) {
    std::optional<Time> Min = minNextDelay();
    if (!Min || *Min >= T)
      return;
    runCalc(*Min);
  }
}

bool Monitor::feed(StreamId Input, Time Ts, Value V) {
  if (Err.Failed)
    return false;
  if (Finished) {
    Err.fail("feed() after finish()");
    return false;
  }
  assert(Plan.spec().stream(Input).Kind == StreamKind::Input &&
         "feed() targets must be input streams");
  if (Ts < 0) {
    failAt(Ts, Input, "timestamps must be non-negative");
    return false;
  }
  if (Ts < PendingTs || (CalcDoneForPending && Ts == PendingTs)) {
    failAt(Ts, Input, "input events must arrive in timestamp order");
    return false;
  }
  if (Ts > PendingTs) {
    flushBefore(Ts);
    if (Err.Failed)
      return false;
    PendingTs = Ts;
    CalcDoneForPending = false;
  } else if (Present[Input]) {
    failAt(Ts, Input, "two events on one stream at the same timestamp");
    return false;
  }
  setValue(Input, std::move(V));
  return true;
}

void Monitor::finish(std::optional<Time> Horizon) {
  if (Err.Failed || Finished)
    return;
  Time Bound = Horizon ? (*Horizon == std::numeric_limits<Time>::max()
                              ? *Horizon
                              : *Horizon + 1)
                       : std::numeric_limits<Time>::max();
  flushBefore(Bound);
  Finished = true;
}

std::vector<OutputEvent> tessla::runMonitor(
    const MonitorPlan &Plan,
    const std::vector<std::tuple<StreamId, Time, Value>> &Events,
    std::optional<Time> Horizon, std::string *ErrorOut) {
  Monitor M(Plan);
  std::vector<OutputEvent> Out;
  M.setOutputHandler([&Out](Time Ts, StreamId Id, const Value &V) {
    // The handler's value is borrowed: with the optimization on, the
    // aggregate behind it will be destructively updated at later
    // timestamps. Recording requires a deep copy.
    Out.push_back({Ts, Id, V.deepCopy()});
  });
  for (const auto &[Id, Ts, V] : Events) {
    if (!M.feed(Id, Ts, V))
      break;
  }
  M.finish(Horizon);
  if (ErrorOut)
    *ErrorOut = M.failed() ? M.errorMessage() : "";
  return Out;
}
