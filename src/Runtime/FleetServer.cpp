//===- Runtime/FleetServer.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/FleetServer.h"

#include "tessla/Runtime/Checkpoint.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <thread>

using namespace tessla;

namespace {

bool sendError(Transport &T, const std::string &Msg) {
  return sendFrame(T, FrameType::Error, encodeString(Msg));
}

} // namespace

FleetServer::FleetServer(const Program &Prog, FleetOptions Opts)
    : Client(makeInProcessClient(Prog, Opts)),
      ProgramCk(programChecksum(Prog)),
      Shards(Opts.Shards == 0 ? 1 : Opts.Shards) {}

void FleetServer::requestShutdown() {
  Shutdown.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(ConnMu);
  if (ActiveListener)
    ActiveListener->close();
  for (Transport *T : LiveConns)
    T->interrupt();
}

void FleetServer::serve(Listener &L) {
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (shutdownRequested())
      return;
    ActiveListener = &L;
  }
  std::vector<std::thread> Threads;
  for (;;) {
    std::unique_ptr<Transport> T = L.accept();
    if (!T)
      break; // listener closed (shutdown) or died
    Threads.emplace_back(
        [this, Conn = std::move(T)]() mutable {
          handleConnection(std::move(Conn));
        });
  }
  for (std::thread &Th : Threads)
    Th.join();
  std::lock_guard<std::mutex> Lock(ConnMu);
  ActiveListener = nullptr;
}

void FleetServer::handleConnection(std::unique_ptr<Transport> T) {
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (shutdownRequested()) {
      T->close();
      return;
    }
    LiveConns.push_back(T.get());
  }

  FrameDecoder Dec;
  std::string Err;
  std::unique_ptr<ClientProducer> Prod;
  uint64_t BusySent = 0;

  // Handshake first: Hello in, HelloAck out.
  bool Keep = false;
  if (auto F = recvFrame(*T, Dec, Err)) {
    if (F->Type != FrameType::Hello) {
      sendError(*T, formatString("expected Hello, got %s frame",
                                 frameTypeName(F->Type)));
    } else {
      uint32_t Version = 0;
      if (!decodeHello(F->Payload.data(), F->Payload.size(), Version, Err)) {
        sendError(*T, Err);
      } else if (Version != WireFormatVersion) {
        sendError(*T, formatString("wire version mismatch: client speaks "
                                   "v%u, this server v%u",
                                   Version, WireFormatVersion));
      } else {
        Keep = sendFrame(
            *T, FrameType::HelloAck,
            encodeHelloAck({WireFormatVersion, ProgramCk, Shards}));
      }
    }
  }

  while (Keep) {
    auto F = recvFrame(*T, Dec, Err);
    if (!F)
      break; // peer closed, malformed stream, or interrupt()
    Keep = handleFrame(*T, std::move(*F), Prod, BusySent);
  }

  if (Prod)
    Prod->close(); // connection dropped mid-stream: producer ends here

  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    LiveConns.erase(std::find(LiveConns.begin(), LiveConns.end(), T.get()));
  }
  T->close();
}

/// One post-handshake frame. Returns false to drop the connection (the
/// Error frame, if any, was already sent).
bool FleetServer::handleFrame(Transport &T, WireFrame F,
                              std::unique_ptr<ClientProducer> &Prod,
                              uint64_t &BusySent) {
  std::string Err;
  switch (F.Type) {
  case FrameType::Batch: {
    auto B = decodeEventBatch(F.Payload.data(), F.Payload.size(), Err);
    if (!B) {
      sendError(T, Err);
      return false;
    }
    if (!Prod) {
      Prod = Client->producer(&Err);
      if (!Prod) {
        sendError(T, Err);
        return false;
      }
    }
    for (EventRecord &R : B->Records) {
      if (!Prod->feed(R.Session, R.Input, R.Ts, std::move(R.V))) {
        sendError(T, Prod->error());
        return false;
      }
    }
    // Surface backpressure: one Busy frame per batch that stalled, with
    // the cumulative stall count as its hint.
    uint64_t Busy = Prod->busySignals();
    if (Busy > BusySent) {
      BusySent = Busy;
      return sendFrame(T, FrameType::Busy, encodeU64(Busy));
    }
    return true;
  }

  case FrameType::Finish: {
    auto Scope = decodeU64(F.Payload.data(), F.Payload.size(), Err);
    if (!Scope) {
      sendError(T, Err);
      return false;
    }
    if (*Scope == FinishScopeProducer) {
      if (Prod) {
        Prod->close();
        Prod.reset();
      }
      return sendFrame(T, FrameType::FinishAck, encodeFinishAck({0, 0}));
    }
    if (*Scope != FinishScopeFleet) {
      sendError(T, formatString("unknown Finish scope %llu",
                                static_cast<unsigned long long>(*Scope)));
      return false;
    }
    if (Prod) {
      Prod->close();
      Prod.reset();
    }
    auto R = Client->finish(&Err);
    if (!R) {
      sendError(T, Err);
      return false;
    }
    // Stream the merged trace, then the counters.
    std::vector<WireOutputRecord> Chunk;
    constexpr size_t ChunkCap = 4096;
    Chunk.reserve(ChunkCap);
    for (SessionOutputEvent &E : R->Outputs) {
      Chunk.push_back(
          {E.Session, E.Event.Ts, E.Event.Id, std::move(E.Event.V)});
      if (Chunk.size() == ChunkCap) {
        if (!sendFrame(T, FrameType::Outputs, encodeOutputs(Chunk)))
          return false;
        Chunk.clear();
      }
    }
    if (!Chunk.empty() &&
        !sendFrame(T, FrameType::Outputs, encodeOutputs(Chunk)))
      return false;
    return sendFrame(T, FrameType::FinishAck,
                     encodeFinishAck({R->FailedSessions, R->TotalOutputs}));
  }

  case FrameType::Snapshot: {
    auto Bytes = Client->snapshot(&Err);
    if (!Bytes) {
      sendError(T, Err);
      return false;
    }
    return sendFrame(T, FrameType::SnapshotAck, *Bytes);
  }

  case FrameType::Restore: {
    auto N = Client->restore(F.Payload, &Err);
    if (!N) {
      sendError(T, Err);
      return false;
    }
    return sendFrame(T, FrameType::RestoreAck, encodeU64(*N));
  }

  case FrameType::ForkSession: {
    auto Req = decodeForkSession(F.Payload.data(), F.Payload.size(), Err);
    if (!Req) {
      sendError(T, Err);
      return false;
    }
    if (!Client->forkSession(Req->Src, Req->Dst, &Err)) {
      sendError(T, Err);
      return false;
    }
    return sendFrame(T, FrameType::ForkAck);
  }

  case FrameType::Stats: {
    auto S = Client->statsText(&Err);
    if (!S) {
      sendError(T, Err);
      return false;
    }
    return sendFrame(T, FrameType::StatsAck, encodeString(*S));
  }

  case FrameType::Shutdown:
    sendFrame(T, FrameType::ShutdownAck);
    requestShutdown();
    return false;

  default:
    sendError(T, formatString("unexpected %s frame",
                              frameTypeName(F.Type)));
    return false;
  }
}
