//===- Runtime/BuiltinImpls.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/BuiltinImpls.h"

#include "tessla/Support/Format.h"

#include <cassert>
#include <cmath>

using namespace tessla;

namespace {

bool isNumeric(const Value &V) {
  return V.kind() == Value::Kind::Int || V.kind() == Value::Kind::Float;
}

/// Applies an Int/Float binary arithmetic operator.
Value arith(BuiltinId Fn, const Value &A, const Value &B, EvalError &Err) {
  if (!isNumeric(A) || !isNumeric(B) || A.kind() != B.kind()) {
    Err.fail(formatString("arithmetic on non-numeric or mixed kinds "
                          "(%s, %s)",
                          std::string(valueKindName(A.kind())).c_str(),
                          std::string(valueKindName(B.kind())).c_str()));
    return Value::unit();
  }
  if (A.kind() == Value::Kind::Int) {
    int64_t X = A.getInt(), Y = B.getInt();
    switch (Fn) {
    case BuiltinId::Add:
      return Value::integer(X + Y);
    case BuiltinId::Sub:
      return Value::integer(X - Y);
    case BuiltinId::Mul:
      return Value::integer(X * Y);
    case BuiltinId::Div:
      if (Y == 0) {
        Err.fail("integer division by zero");
        return Value::unit();
      }
      return Value::integer(X / Y);
    case BuiltinId::Mod:
      if (Y == 0) {
        Err.fail("integer modulo by zero");
        return Value::unit();
      }
      return Value::integer(X % Y);
    case BuiltinId::Min:
      return Value::integer(std::min(X, Y));
    case BuiltinId::Max:
      return Value::integer(std::max(X, Y));
    default:
      break;
    }
  } else {
    double X = A.getFloat(), Y = B.getFloat();
    switch (Fn) {
    case BuiltinId::Add:
      return Value::floating(X + Y);
    case BuiltinId::Sub:
      return Value::floating(X - Y);
    case BuiltinId::Mul:
      return Value::floating(X * Y);
    case BuiltinId::Div:
      return Value::floating(X / Y); // IEEE semantics for float division
    case BuiltinId::Mod:
      return Value::floating(std::fmod(X, Y));
    case BuiltinId::Min:
      return Value::floating(std::min(X, Y));
    case BuiltinId::Max:
      return Value::floating(std::max(X, Y));
    default:
      break;
    }
  }
  assert(false && "not an arithmetic builtin");
  return Value::unit();
}

Value expectBool(const Value &V, EvalError &Err) {
  if (V.kind() != Value::Kind::Bool) {
    Err.fail("boolean operator applied to non-Bool value");
    return Value::boolean(false);
  }
  return V;
}

// --- Set operations ------------------------------------------------------

Value setWithInsert(const Value &S, const Value &X, bool InPlace) {
  if (InPlace) {
    S.getSet()->Mutable.insert(X);
    return S;
  }
  auto Fresh = makeSetData(false);
  Fresh->Persistent = S.getSet()->Persistent.insert(X);
  return Value::set(std::move(Fresh));
}

Value setWithErase(const Value &S, const Value &X, bool InPlace) {
  if (InPlace) {
    S.getSet()->Mutable.erase(X);
    return S;
  }
  auto Fresh = makeSetData(false);
  Fresh->Persistent = S.getSet()->Persistent.erase(X);
  return Value::set(std::move(Fresh));
}

// --- Queue operations ----------------------------------------------------

Value queueWithEnq(const Value &Q, const Value &X, bool InPlace) {
  if (InPlace) {
    Q.getQueue()->Mutable.push_back(X);
    return Q;
  }
  auto Fresh = makeQueueData(false);
  Fresh->Persistent = Q.getQueue()->Persistent.enqueue(X);
  return Value::queue(std::move(Fresh));
}

Value queueWithDeq(const Value &Q, bool InPlace, EvalError &Err) {
  if (Q.getQueue()->empty()) {
    Err.fail("queueDeq on empty queue");
    return Value::unit();
  }
  if (InPlace) {
    Q.getQueue()->Mutable.pop_front();
    return Q;
  }
  auto Fresh = makeQueueData(false);
  Fresh->Persistent = Q.getQueue()->Persistent.dequeue();
  return Value::queue(std::move(Fresh));
}

Value queueTrimmed(const Value &Q, int64_t Bound, bool InPlace) {
  if (Bound < 0)
    Bound = 0;
  if (InPlace) {
    auto &Deque = Q.getQueue()->Mutable;
    while (Deque.size() > static_cast<size_t>(Bound))
      Deque.pop_front();
    return Q;
  }
  PQueue<Value> P = Q.getQueue()->Persistent;
  if (P.size() <= static_cast<size_t>(Bound))
    return Q; // unchanged: share the handle
  while (P.size() > static_cast<size_t>(Bound))
    P = P.dequeue();
  auto Fresh = makeQueueData(false);
  Fresh->Persistent = std::move(P);
  return Value::queue(std::move(Fresh));
}

} // namespace

Value tessla::applyBuiltin(BuiltinId Fn, const Value *const *Args,
                           unsigned NumArgs, bool InPlace, EvalError &Err) {
  (void)NumArgs;
  auto Arg = [&](unsigned I) -> const Value & {
    assert(I < NumArgs && Args[I] && "required argument missing");
    return *Args[I];
  };

  switch (Fn) {
  // Event combination (merge is handled by the engine; ite/filter pass
  // values through unchanged).
  case BuiltinId::Merge:
    return Arg(0); // engine already selected the first present argument
  case BuiltinId::Ite:
    return expectBool(Arg(0), Err).getBool() ? Arg(1) : Arg(2);
  case BuiltinId::Filter:
    return Arg(0); // engine checked the condition

  // Arithmetic.
  case BuiltinId::Add:
  case BuiltinId::Sub:
  case BuiltinId::Mul:
  case BuiltinId::Div:
  case BuiltinId::Mod:
  case BuiltinId::Min:
  case BuiltinId::Max:
    return arith(Fn, Arg(0), Arg(1), Err);
  case BuiltinId::Neg:
    if (Arg(0).kind() == Value::Kind::Int)
      return Value::integer(-Arg(0).getInt());
    if (Arg(0).kind() == Value::Kind::Float)
      return Value::floating(-Arg(0).getFloat());
    Err.fail("neg on non-numeric value");
    return Value::unit();
  case BuiltinId::Abs:
    if (Arg(0).kind() == Value::Kind::Int)
      return Value::integer(std::abs(Arg(0).getInt()));
    if (Arg(0).kind() == Value::Kind::Float)
      return Value::floating(std::fabs(Arg(0).getFloat()));
    Err.fail("abs on non-numeric value");
    return Value::unit();

  // Comparisons (total order over same-kind values).
  case BuiltinId::Eq:
    return Value::boolean(Arg(0) == Arg(1));
  case BuiltinId::Neq:
    return Value::boolean(!(Arg(0) == Arg(1)));
  case BuiltinId::Lt:
    return Value::boolean(compareValues(Arg(0), Arg(1)) < 0);
  case BuiltinId::Leq:
    return Value::boolean(compareValues(Arg(0), Arg(1)) <= 0);
  case BuiltinId::Gt:
    return Value::boolean(compareValues(Arg(0), Arg(1)) > 0);
  case BuiltinId::Geq:
    return Value::boolean(compareValues(Arg(0), Arg(1)) >= 0);

  // Boolean.
  case BuiltinId::LAnd:
    return Value::boolean(expectBool(Arg(0), Err).getBool() &&
                          expectBool(Arg(1), Err).getBool());
  case BuiltinId::LOr:
    return Value::boolean(expectBool(Arg(0), Err).getBool() ||
                          expectBool(Arg(1), Err).getBool());
  case BuiltinId::LNot:
    return Value::boolean(!expectBool(Arg(0), Err).getBool());

  // Conversions.
  case BuiltinId::ToFloat:
    return Value::floating(static_cast<double>(Arg(0).getInt()));
  case BuiltinId::ToInt:
    return Value::integer(static_cast<int64_t>(Arg(0).getFloat()));

  // Sets.
  case BuiltinId::SetEmpty:
    return Value::set(makeSetData(InPlace));
  case BuiltinId::SetAdd:
    return setWithInsert(Arg(0), Arg(1), InPlace);
  case BuiltinId::SetRemove:
    return setWithErase(Arg(0), Arg(1), InPlace);
  case BuiltinId::SetToggle:
    return Arg(0).getSet()->contains(Arg(1))
               ? setWithErase(Arg(0), Arg(1), InPlace)
               : setWithInsert(Arg(0), Arg(1), InPlace);
  case BuiltinId::SetUpdate: {
    // Optional presence: Args[1] = value to add, Args[2] = value to
    // remove; at least one is present (engine enforced).
    Value Result = Arg(0);
    if (Args[1])
      Result = setWithInsert(Result, *Args[1], InPlace);
    if (Args[2])
      Result = setWithErase(Result, *Args[2], InPlace);
    return Result;
  }
  case BuiltinId::SetUnion: {
    // Writes Arg(0), reads Arg(1); the reader side is
    // representation-agnostic.
    if (InPlace) {
      const Value &Dst = Arg(0);
      // items() materializes a copy, so even a (degenerate) self-union
      // does not iterate a container being modified.
      for (const Value &V : Arg(1).getSet()->items())
        Dst.getSet()->Mutable.insert(V);
      return Dst;
    }
    auto Fresh = makeSetData(false);
    Fresh->Persistent = Arg(0).getSet()->Persistent;
    for (const Value &V : Arg(1).getSet()->items())
      Fresh->Persistent = Fresh->Persistent.insert(V);
    return Value::set(std::move(Fresh));
  }
  case BuiltinId::SetDiff: {
    if (InPlace) {
      const Value &Dst = Arg(0);
      for (const Value &V : Arg(1).getSet()->items())
        Dst.getSet()->Mutable.erase(V);
      return Dst;
    }
    auto Fresh = makeSetData(false);
    Fresh->Persistent = Arg(0).getSet()->Persistent;
    for (const Value &V : Arg(1).getSet()->items())
      Fresh->Persistent = Fresh->Persistent.erase(V);
    return Value::set(std::move(Fresh));
  }
  case BuiltinId::SetContains:
    return Value::boolean(Arg(0).getSet()->contains(Arg(1)));
  case BuiltinId::SetSize:
    return Value::integer(static_cast<int64_t>(Arg(0).getSet()->size()));

  // Maps.
  case BuiltinId::MapEmpty:
    return Value::map(makeMapData(InPlace));
  case BuiltinId::MapPut: {
    const Value &M = Arg(0);
    if (InPlace) {
      M.getMap()->Mutable[Arg(1)] = Arg(2);
      return M;
    }
    auto Fresh = makeMapData(false);
    Fresh->Persistent = M.getMap()->Persistent.set(Arg(1), Arg(2));
    return Value::map(std::move(Fresh));
  }
  case BuiltinId::MapRemove: {
    const Value &M = Arg(0);
    if (InPlace) {
      M.getMap()->Mutable.erase(Arg(1));
      return M;
    }
    auto Fresh = makeMapData(false);
    Fresh->Persistent = M.getMap()->Persistent.erase(Arg(1));
    return Value::map(std::move(Fresh));
  }
  case BuiltinId::MapGet: {
    const Value *Found = Arg(0).getMap()->find(Arg(1));
    if (!Found) {
      Err.fail("mapGet: key " + Arg(1).str() + " not present");
      return Value::unit();
    }
    return *Found;
  }
  case BuiltinId::MapGetOrElse: {
    const Value *Found = Arg(0).getMap()->find(Arg(1));
    return Found ? *Found : Arg(2);
  }
  case BuiltinId::MapContains:
    return Value::boolean(Arg(0).getMap()->find(Arg(1)) != nullptr);
  case BuiltinId::MapSize:
    return Value::integer(static_cast<int64_t>(Arg(0).getMap()->size()));

  // Queues.
  case BuiltinId::QueueEmpty:
    return Value::queue(makeQueueData(InPlace));
  case BuiltinId::QueueEnq:
    return queueWithEnq(Arg(0), Arg(1), InPlace);
  case BuiltinId::QueueDeq:
    return queueWithDeq(Arg(0), InPlace, Err);
  case BuiltinId::QueueFront: {
    const QueueData &Q = *Arg(0).getQueue();
    if (Q.empty()) {
      Err.fail("queueFront on empty queue");
      return Value::unit();
    }
    return Q.IsMutable ? Q.Mutable.front() : Q.Persistent.front();
  }
  case BuiltinId::QueueSize:
    return Value::integer(static_cast<int64_t>(Arg(0).getQueue()->size()));
  case BuiltinId::QueueTrim:
    return queueTrimmed(Arg(0), Arg(1).getInt(), InPlace);

  // Strings.
  case BuiltinId::StrConcat:
    return Value::string(Arg(0).getString() + Arg(1).getString());
  case BuiltinId::StrLen:
    return Value::integer(
        static_cast<int64_t>(Arg(0).getString().size()));
  }
  assert(false && "unhandled builtin");
  return Value::unit();
}
