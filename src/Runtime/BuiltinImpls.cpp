//===- Runtime/BuiltinImpls.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/BuiltinImpls.h"

#include "tessla/Support/Format.h"

#include <cassert>
#include <cmath>

using namespace tessla;

namespace {

bool isNumeric(const Value &V) {
  return V.kind() == Value::Kind::Int || V.kind() == Value::Kind::Float;
}

/// Applies an Int/Float binary arithmetic operator.
Value arith(BuiltinId Fn, const Value &A, const Value &B, EvalError &Err) {
  if (!isNumeric(A) || !isNumeric(B) || A.kind() != B.kind()) {
    Err.fail(formatString("arithmetic on non-numeric or mixed kinds "
                          "(%s, %s)",
                          std::string(valueKindName(A.kind())).c_str(),
                          std::string(valueKindName(B.kind())).c_str()));
    return Value::unit();
  }
  if (A.kind() == Value::Kind::Int) {
    int64_t X = A.getInt(), Y = B.getInt();
    switch (Fn) {
    case BuiltinId::Add:
      return Value::integer(X + Y);
    case BuiltinId::Sub:
      return Value::integer(X - Y);
    case BuiltinId::Mul:
      return Value::integer(X * Y);
    case BuiltinId::Div:
      if (Y == 0) {
        Err.fail("integer division by zero");
        return Value::unit();
      }
      return Value::integer(X / Y);
    case BuiltinId::Mod:
      if (Y == 0) {
        Err.fail("integer modulo by zero");
        return Value::unit();
      }
      return Value::integer(X % Y);
    case BuiltinId::Min:
      return Value::integer(std::min(X, Y));
    case BuiltinId::Max:
      return Value::integer(std::max(X, Y));
    default:
      break;
    }
  } else {
    double X = A.getFloat(), Y = B.getFloat();
    switch (Fn) {
    case BuiltinId::Add:
      return Value::floating(X + Y);
    case BuiltinId::Sub:
      return Value::floating(X - Y);
    case BuiltinId::Mul:
      return Value::floating(X * Y);
    case BuiltinId::Div:
      return Value::floating(X / Y); // IEEE semantics for float division
    case BuiltinId::Mod:
      return Value::floating(std::fmod(X, Y));
    case BuiltinId::Min:
      return Value::floating(std::min(X, Y));
    case BuiltinId::Max:
      return Value::floating(std::max(X, Y));
    default:
      break;
    }
  }
  assert(false && "not an arithmetic builtin");
  return Value::unit();
}

Value expectBool(const Value &V, EvalError &Err) {
  if (V.kind() != Value::Kind::Bool) {
    Err.fail("boolean operator applied to non-Bool value");
    return Value::boolean(false);
  }
  return V;
}

// --- Set operations ------------------------------------------------------

Value setWithInsert(const Value &S, const Value &X, bool InPlace) {
  SetCow C = S.setCow(InPlace);
  C.add(X);
  return std::move(C).finish();
}

Value setWithErase(const Value &S, const Value &X, bool InPlace) {
  SetCow C = S.setCow(InPlace);
  C.remove(X);
  return std::move(C).finish();
}

// --- Queue operations ----------------------------------------------------

Value queueWithEnq(const Value &Q, const Value &X, bool InPlace) {
  QueueCow C = Q.queueCow(InPlace);
  C.enqueue(X);
  return std::move(C).finish();
}

Value queueWithDeq(const Value &Q, bool InPlace, EvalError &Err) {
  if (Q.asQueue().empty()) {
    Err.fail("queueDeq on empty queue");
    return Value::unit();
  }
  QueueCow C = Q.queueCow(InPlace);
  C.dequeue();
  return std::move(C).finish();
}

Value queueTrimmed(const Value &Q, int64_t Bound, bool InPlace) {
  if (Bound < 0)
    Bound = 0;
  if (Q.asQueue().size() <= static_cast<size_t>(Bound))
    return Q; // unchanged: share the handle
  QueueCow C = Q.queueCow(InPlace);
  while (C.size() > static_cast<size_t>(Bound))
    C.dequeue();
  return std::move(C).finish();
}

// --- Per-builtin evaluators ----------------------------------------------
//
// One function per builtin, all with the uniform BuiltinFn signature, so
// Program::compile can resolve a lift step to a direct function pointer
// once and the per-event hot path never dispatches over BuiltinId.

/// Shorthand for the required-argument access inside an evaluator.
#define TESSLA_ARG(I) (*Args[I])

template <BuiltinId Fn>
Value evalArith(const Value *const *Args, bool, EvalError &Err) {
  // `arith`'s inner switch over Fn constant-folds per instantiation.
  return arith(Fn, TESSLA_ARG(0), TESSLA_ARG(1), Err);
}

Value evalMerge(const Value *const *Args, bool, EvalError &) {
  return TESSLA_ARG(0); // engine already selected the winning argument
}

Value evalIte(const Value *const *Args, bool, EvalError &Err) {
  return expectBool(TESSLA_ARG(0), Err).getBool() ? TESSLA_ARG(1)
                                                  : TESSLA_ARG(2);
}

Value evalFilter(const Value *const *Args, bool, EvalError &) {
  return TESSLA_ARG(0); // engine checked the condition
}

Value evalNeg(const Value *const *Args, bool, EvalError &Err) {
  if (TESSLA_ARG(0).kind() == Value::Kind::Int)
    return Value::integer(-TESSLA_ARG(0).getInt());
  if (TESSLA_ARG(0).kind() == Value::Kind::Float)
    return Value::floating(-TESSLA_ARG(0).getFloat());
  Err.fail("neg on non-numeric value");
  return Value::unit();
}

Value evalAbs(const Value *const *Args, bool, EvalError &Err) {
  if (TESSLA_ARG(0).kind() == Value::Kind::Int)
    return Value::integer(std::abs(TESSLA_ARG(0).getInt()));
  if (TESSLA_ARG(0).kind() == Value::Kind::Float)
    return Value::floating(std::fabs(TESSLA_ARG(0).getFloat()));
  Err.fail("abs on non-numeric value");
  return Value::unit();
}

Value evalEq(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(TESSLA_ARG(0) == TESSLA_ARG(1));
}

Value evalNeq(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(!(TESSLA_ARG(0) == TESSLA_ARG(1)));
}

Value evalLt(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(compareValues(TESSLA_ARG(0), TESSLA_ARG(1)) < 0);
}

Value evalLeq(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(compareValues(TESSLA_ARG(0), TESSLA_ARG(1)) <= 0);
}

Value evalGt(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(compareValues(TESSLA_ARG(0), TESSLA_ARG(1)) > 0);
}

Value evalGeq(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(compareValues(TESSLA_ARG(0), TESSLA_ARG(1)) >= 0);
}

Value evalLAnd(const Value *const *Args, bool, EvalError &Err) {
  return Value::boolean(expectBool(TESSLA_ARG(0), Err).getBool() &&
                        expectBool(TESSLA_ARG(1), Err).getBool());
}

Value evalLOr(const Value *const *Args, bool, EvalError &Err) {
  return Value::boolean(expectBool(TESSLA_ARG(0), Err).getBool() ||
                        expectBool(TESSLA_ARG(1), Err).getBool());
}

Value evalLNot(const Value *const *Args, bool, EvalError &Err) {
  return Value::boolean(!expectBool(TESSLA_ARG(0), Err).getBool());
}

Value evalToFloat(const Value *const *Args, bool, EvalError &) {
  return Value::floating(static_cast<double>(TESSLA_ARG(0).getInt()));
}

Value evalToInt(const Value *const *Args, bool, EvalError &) {
  return Value::integer(static_cast<int64_t>(TESSLA_ARG(0).getFloat()));
}

Value evalSetEmpty(const Value *const *, bool, EvalError &) {
  return Value::emptySet();
}

Value evalSetAdd(const Value *const *Args, bool InPlace, EvalError &) {
  return setWithInsert(TESSLA_ARG(0), TESSLA_ARG(1), InPlace);
}

Value evalSetRemove(const Value *const *Args, bool InPlace, EvalError &) {
  return setWithErase(TESSLA_ARG(0), TESSLA_ARG(1), InPlace);
}

Value evalSetToggle(const Value *const *Args, bool InPlace, EvalError &) {
  return TESSLA_ARG(0).asSet().contains(TESSLA_ARG(1))
             ? setWithErase(TESSLA_ARG(0), TESSLA_ARG(1), InPlace)
             : setWithInsert(TESSLA_ARG(0), TESSLA_ARG(1), InPlace);
}

Value evalSetUpdate(const Value *const *Args, bool InPlace, EvalError &) {
  // Optional presence: Args[1] = value to add, Args[2] = value to
  // remove; at least one is present (engine enforced).
  Value Result = TESSLA_ARG(0);
  if (Args[1])
    Result = setWithInsert(Result, *Args[1], InPlace);
  if (Args[2])
    Result = setWithErase(Result, *Args[2], InPlace);
  return Result;
}

Value evalSetUnion(const Value *const *Args, bool InPlace, EvalError &) {
  // Writes Args[0], reads Args[1]. items() materializes a copy of the
  // reader, so even a (degenerate) self-union never iterates a structure
  // being destructively updated.
  std::vector<Value> Src = TESSLA_ARG(1).asSet().items();
  SetCow C = TESSLA_ARG(0).setCow(InPlace);
  for (Value &V : Src)
    C.add(std::move(V));
  return std::move(C).finish();
}

Value evalSetDiff(const Value *const *Args, bool InPlace, EvalError &) {
  std::vector<Value> Src = TESSLA_ARG(1).asSet().items();
  SetCow C = TESSLA_ARG(0).setCow(InPlace);
  for (const Value &V : Src)
    C.remove(V);
  return std::move(C).finish();
}

Value evalSetContains(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(TESSLA_ARG(0).asSet().contains(TESSLA_ARG(1)));
}

Value evalSetSize(const Value *const *Args, bool, EvalError &) {
  return Value::integer(
      static_cast<int64_t>(TESSLA_ARG(0).asSet().size()));
}

Value evalMapEmpty(const Value *const *, bool, EvalError &) {
  return Value::emptyMap();
}

Value evalMapPut(const Value *const *Args, bool InPlace, EvalError &) {
  MapCow C = TESSLA_ARG(0).mapCow(InPlace);
  C.put(TESSLA_ARG(1), TESSLA_ARG(2));
  return std::move(C).finish();
}

Value evalMapRemove(const Value *const *Args, bool InPlace, EvalError &) {
  MapCow C = TESSLA_ARG(0).mapCow(InPlace);
  C.remove(TESSLA_ARG(1));
  return std::move(C).finish();
}

Value evalMapGet(const Value *const *Args, bool, EvalError &Err) {
  const Value *Found = TESSLA_ARG(0).asMap().find(TESSLA_ARG(1));
  if (!Found) {
    Err.fail("mapGet: key " + TESSLA_ARG(1).str() + " not present");
    return Value::unit();
  }
  return *Found;
}

Value evalMapGetOrElse(const Value *const *Args, bool, EvalError &) {
  const Value *Found = TESSLA_ARG(0).asMap().find(TESSLA_ARG(1));
  return Found ? *Found : TESSLA_ARG(2);
}

Value evalMapContains(const Value *const *Args, bool, EvalError &) {
  return Value::boolean(TESSLA_ARG(0).asMap().contains(TESSLA_ARG(1)));
}

Value evalMapSize(const Value *const *Args, bool, EvalError &) {
  return Value::integer(
      static_cast<int64_t>(TESSLA_ARG(0).asMap().size()));
}

Value evalQueueEmpty(const Value *const *, bool, EvalError &) {
  return Value::emptyQueue();
}

Value evalQueueEnq(const Value *const *Args, bool InPlace, EvalError &) {
  return queueWithEnq(TESSLA_ARG(0), TESSLA_ARG(1), InPlace);
}

Value evalQueueDeq(const Value *const *Args, bool InPlace, EvalError &Err) {
  return queueWithDeq(TESSLA_ARG(0), InPlace, Err);
}

Value evalQueueFront(const Value *const *Args, bool, EvalError &Err) {
  QueueView Q = TESSLA_ARG(0).asQueue();
  if (Q.empty()) {
    Err.fail("queueFront on empty queue");
    return Value::unit();
  }
  return Q.front();
}

Value evalQueueSize(const Value *const *Args, bool, EvalError &) {
  return Value::integer(
      static_cast<int64_t>(TESSLA_ARG(0).asQueue().size()));
}

Value evalQueueTrim(const Value *const *Args, bool InPlace, EvalError &) {
  return queueTrimmed(TESSLA_ARG(0), TESSLA_ARG(1).getInt(), InPlace);
}

Value evalStrConcat(const Value *const *Args, bool, EvalError &) {
  return Value::string(TESSLA_ARG(0).getString() + TESSLA_ARG(1).getString());
}

Value evalStrLen(const Value *const *Args, bool, EvalError &) {
  return Value::integer(
      static_cast<int64_t>(TESSLA_ARG(0).getString().size()));
}

#undef TESSLA_ARG

} // namespace

BuiltinFn tessla::builtinImpl(BuiltinId Fn) {
  switch (Fn) {
  case BuiltinId::Merge:
    return evalMerge;
  case BuiltinId::Ite:
    return evalIte;
  case BuiltinId::Filter:
    return evalFilter;
  case BuiltinId::Add:
    return evalArith<BuiltinId::Add>;
  case BuiltinId::Sub:
    return evalArith<BuiltinId::Sub>;
  case BuiltinId::Mul:
    return evalArith<BuiltinId::Mul>;
  case BuiltinId::Div:
    return evalArith<BuiltinId::Div>;
  case BuiltinId::Mod:
    return evalArith<BuiltinId::Mod>;
  case BuiltinId::Min:
    return evalArith<BuiltinId::Min>;
  case BuiltinId::Max:
    return evalArith<BuiltinId::Max>;
  case BuiltinId::Neg:
    return evalNeg;
  case BuiltinId::Abs:
    return evalAbs;
  case BuiltinId::Eq:
    return evalEq;
  case BuiltinId::Neq:
    return evalNeq;
  case BuiltinId::Lt:
    return evalLt;
  case BuiltinId::Leq:
    return evalLeq;
  case BuiltinId::Gt:
    return evalGt;
  case BuiltinId::Geq:
    return evalGeq;
  case BuiltinId::LAnd:
    return evalLAnd;
  case BuiltinId::LOr:
    return evalLOr;
  case BuiltinId::LNot:
    return evalLNot;
  case BuiltinId::ToFloat:
    return evalToFloat;
  case BuiltinId::ToInt:
    return evalToInt;
  case BuiltinId::SetEmpty:
    return evalSetEmpty;
  case BuiltinId::SetAdd:
    return evalSetAdd;
  case BuiltinId::SetRemove:
    return evalSetRemove;
  case BuiltinId::SetContains:
    return evalSetContains;
  case BuiltinId::SetSize:
    return evalSetSize;
  case BuiltinId::SetToggle:
    return evalSetToggle;
  case BuiltinId::SetUpdate:
    return evalSetUpdate;
  case BuiltinId::SetUnion:
    return evalSetUnion;
  case BuiltinId::SetDiff:
    return evalSetDiff;
  case BuiltinId::MapEmpty:
    return evalMapEmpty;
  case BuiltinId::MapPut:
    return evalMapPut;
  case BuiltinId::MapRemove:
    return evalMapRemove;
  case BuiltinId::MapGet:
    return evalMapGet;
  case BuiltinId::MapGetOrElse:
    return evalMapGetOrElse;
  case BuiltinId::MapContains:
    return evalMapContains;
  case BuiltinId::MapSize:
    return evalMapSize;
  case BuiltinId::QueueEmpty:
    return evalQueueEmpty;
  case BuiltinId::QueueEnq:
    return evalQueueEnq;
  case BuiltinId::QueueDeq:
    return evalQueueDeq;
  case BuiltinId::QueueFront:
    return evalQueueFront;
  case BuiltinId::QueueSize:
    return evalQueueSize;
  case BuiltinId::QueueTrim:
    return evalQueueTrim;
  case BuiltinId::StrConcat:
    return evalStrConcat;
  case BuiltinId::StrLen:
    return evalStrLen;
  }
  assert(false && "unhandled builtin");
  return evalMerge;
}

Value tessla::applyBuiltin(BuiltinId Fn, const Value *const *Args,
                           unsigned NumArgs, bool InPlace, EvalError &Err) {
  (void)NumArgs;
  return builtinImpl(Fn)(Args, InPlace, Err);
}
