//===- Runtime/Value.cpp ----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Value.h"

#include "tessla/Runtime/Containers.h"
#include "tessla/Support/Format.h"

#include <algorithm>
#include <cassert>

using namespace tessla;

Value::~Value() = default;

Value Value::fromLiteral(const ConstantLit &Lit) {
  struct Visitor {
    Value operator()(std::monostate) const { return Value::unit(); }
    Value operator()(bool B) const { return Value::boolean(B); }
    Value operator()(int64_t I) const { return Value::integer(I); }
    Value operator()(double D) const { return Value::floating(D); }
    Value operator()(const std::string &S) const {
      return Value::string(S);
    }
  };
  return std::visit(Visitor{}, Lit.V);
}

std::string_view tessla::valueKindName(Value::Kind K) {
  switch (K) {
  case Value::Kind::Unit:
    return "Unit";
  case Value::Kind::Bool:
    return "Bool";
  case Value::Kind::Int:
    return "Int";
  case Value::Kind::Float:
    return "Float";
  case Value::Kind::String:
    return "String";
  case Value::Kind::Set:
    return "Set";
  case Value::Kind::Map:
    return "Map";
  case Value::Kind::Queue:
    return "Queue";
  }
  return "?";
}

bool tessla::operator==(const Value &A, const Value &B) {
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case Value::Kind::Unit:
    return true;
  case Value::Kind::Bool:
    return A.getBool() == B.getBool();
  case Value::Kind::Int:
    return A.getInt() == B.getInt();
  case Value::Kind::Float:
    return A.getFloat() == B.getFloat();
  case Value::Kind::String:
    return A.getString() == B.getString();
  case Value::Kind::Set: {
    if (A.aggregateIdentity() == B.aggregateIdentity())
      return true;
    SetView SA = A.asSet(), SB = B.asSet();
    if (SA.size() != SB.size())
      return false;
    for (const Value &V : SA.items())
      if (!SB.contains(V))
        return false;
    return true;
  }
  case Value::Kind::Map: {
    if (A.aggregateIdentity() == B.aggregateIdentity())
      return true;
    MapView MA = A.asMap(), MB = B.asMap();
    if (MA.size() != MB.size())
      return false;
    for (const auto &[K, V] : MA.items()) {
      const Value *Other = MB.find(K);
      if (!Other || !(*Other == V))
        return false;
    }
    return true;
  }
  case Value::Kind::Queue: {
    if (A.aggregateIdentity() == B.aggregateIdentity())
      return true;
    QueueView QA = A.asQueue(), QB = B.asQueue();
    if (QA.size() != QB.size())
      return false;
    return QA.items() == QB.items();
  }
  }
  return false;
}

/// Sorted canonical item lists give aggregates an order and a stable
/// rendering independent of hash iteration order.
static std::vector<Value> sortedItems(std::vector<Value> Items) {
  std::sort(Items.begin(), Items.end(), [](const Value &X, const Value &Y) {
    return compareValues(X, Y) < 0;
  });
  return Items;
}

int tessla::compareValues(const Value &A, const Value &B) {
  auto Rank = [](Value::Kind K) { return static_cast<int>(K); };
  if (A.kind() != B.kind())
    return Rank(A.kind()) < Rank(B.kind()) ? -1 : 1;
  auto Cmp3 = [](auto X, auto Y) { return X < Y ? -1 : (X == Y ? 0 : 1); };
  switch (A.kind()) {
  case Value::Kind::Unit:
    return 0;
  case Value::Kind::Bool:
    return Cmp3(A.getBool(), B.getBool());
  case Value::Kind::Int:
    return Cmp3(A.getInt(), B.getInt());
  case Value::Kind::Float:
    return Cmp3(A.getFloat(), B.getFloat());
  case Value::Kind::String:
    return A.getString().compare(B.getString()) < 0
               ? -1
               : (A.getString() == B.getString() ? 0 : 1);
  case Value::Kind::Set:
  case Value::Kind::Queue: {
    std::vector<Value> IA, IB;
    if (A.kind() == Value::Kind::Set) {
      IA = sortedItems(A.asSet().items());
      IB = sortedItems(B.asSet().items());
    } else {
      IA = A.asQueue().items();
      IB = B.asQueue().items();
    }
    for (size_t I = 0, E = std::min(IA.size(), IB.size()); I != E; ++I)
      if (int C = compareValues(IA[I], IB[I]))
        return C;
    return Cmp3(IA.size(), IB.size());
  }
  case Value::Kind::Map: {
    auto IA = A.asMap().items(), IB = B.asMap().items();
    auto ByKey = [](const std::pair<Value, Value> &X,
                    const std::pair<Value, Value> &Y) {
      return compareValues(X.first, Y.first) < 0;
    };
    std::sort(IA.begin(), IA.end(), ByKey);
    std::sort(IB.begin(), IB.end(), ByKey);
    for (size_t I = 0, E = std::min(IA.size(), IB.size()); I != E; ++I) {
      if (int C = compareValues(IA[I].first, IB[I].first))
        return C;
      if (int C = compareValues(IA[I].second, IB[I].second))
        return C;
    }
    return Cmp3(IA.size(), IB.size());
  }
  }
  return 0;
}

static size_t hashCombine(size_t Seed, size_t H) {
  return Seed ^ (H + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t Value::hash() const {
  size_t KindSeed = static_cast<size_t>(kind()) * 0x9e3779b97f4a7c15ULL;
  switch (kind()) {
  case Kind::Unit:
    return KindSeed;
  case Kind::Bool:
    return hashCombine(KindSeed, getBool() ? 1 : 0);
  case Kind::Int:
    return hashCombine(KindSeed, std::hash<int64_t>{}(getInt()));
  case Kind::Float:
    return hashCombine(KindSeed, std::hash<double>{}(getFloat()));
  case Kind::String:
    return hashCombine(KindSeed, std::hash<std::string>{}(getString()));
  case Kind::Set: {
    // XOR: order-independent of the hash iteration order.
    size_t H = 0;
    asSet().forEach([&H](const Value &V) { H ^= V.hash(); });
    return hashCombine(KindSeed, H);
  }
  case Kind::Map: {
    size_t H = 0;
    asMap().forEach([&H](const Value &K, const Value &V) {
      H ^= hashCombine(K.hash(), V.hash());
    });
    return hashCombine(KindSeed, H);
  }
  case Kind::Queue: {
    size_t H = 0;
    asQueue().forEach(
        [&H](const Value &V) { H = hashCombine(H, V.hash()); });
    return hashCombine(KindSeed, H);
  }
  }
  return 0;
}

std::string Value::str() const {
  switch (kind()) {
  case Kind::Unit:
    return "()";
  case Kind::Bool:
    return getBool() ? "true" : "false";
  case Kind::Int:
    return std::to_string(getInt());
  case Kind::Float:
    return formatDouble(getFloat());
  case Kind::String:
    return "\"" + escapeString(getString()) + "\"";
  case Kind::Set: {
    std::vector<std::string> Parts;
    for (const Value &V : sortedItems(asSet().items()))
      Parts.push_back(V.str());
    return "{" + join(Parts, ", ") + "}";
  }
  case Kind::Map: {
    auto Items = asMap().items();
    std::sort(Items.begin(), Items.end(),
              [](const auto &X, const auto &Y) {
                return compareValues(X.first, Y.first) < 0;
              });
    std::vector<std::string> Parts;
    for (const auto &[K, V] : Items)
      Parts.push_back(K.str() + " -> " + V.str());
    return "{" + join(Parts, ", ") + "}";
  }
  case Kind::Queue: {
    std::vector<std::string> Parts;
    asQueue().forEach(
        [&Parts](const Value &V) { Parts.push_back(V.str()); });
    return "<" + join(Parts, ", ") + ">";
  }
  }
  return "?";
}
