//===- Runtime/FleetClient.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/FleetClient.h"

#include "tessla/Runtime/Checkpoint.h"
#include "tessla/Support/Diagnostics.h"
#include "tessla/Support/Format.h"

#include <atomic>
#include <mutex>

using namespace tessla;

namespace {

void setError(std::string *ErrorOut, std::string Msg) {
  if (ErrorOut)
    *ErrorOut = std::move(Msg);
}

// --- In-process -----------------------------------------------------------

class InProcessClient;

class InProcessProducer : public ClientProducer {
public:
  InProcessProducer(InProcessClient &C, ProducerHandle H)
      : Client(&C), Handle(std::move(H)) {}
  ~InProcessProducer() override { close(); }

  bool feed(SessionId Session, StreamId Input, Time Ts, Value V) override;
  bool flush() override;
  bool close() override;
  uint64_t busySignals() const override { return Busy; }
  const std::string &error() const override { return Err; }

private:
  InProcessClient *Client;
  ProducerHandle Handle;
  uint64_t Busy = 0;
  bool Closed = false;
  std::string Err;
};

class InProcessClient : public FleetClient {
public:
  InProcessClient(const Program &Prog, FleetOptions Opts)
      : Prog(Prog), Opts(Opts), ProgramCk(programChecksum(Prog)),
        Fleet(std::make_unique<MonitorFleet>(Prog, Opts)) {}

  std::unique_ptr<ClientProducer>
  producer(std::string *ErrorOut) override {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Finished) {
      setError(ErrorOut, "fleet already finished");
      return nullptr;
    }
    ProducerHandle H = Fleet->producer();
    if (!H.valid()) {
      setError(ErrorOut, "out of producer slots (FleetOptions::MaxProducers)");
      return nullptr;
    }
    Fresh = false;
    OpenProducers.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<InProcessProducer>(*this, std::move(H));
  }

  std::optional<std::vector<uint8_t>>
  snapshot(std::string *ErrorOut) override {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!controlReady(ErrorOut))
      return std::nullopt;
    std::string SuspendErr;
    FleetCheckpoint C;
    C.ProgramChecksum = ProgramCk;
    C.SourceShards = Fleet->shardCount();
    C.Lanes = Fleet->suspend(&SuspendErr);
    StatsCache = Fleet->stats().str();
    if (!SuspendErr.empty()) {
      // suspend() already finished the fleet; this client is done.
      Finished = true;
      setError(ErrorOut, SuspendErr);
      return std::nullopt;
    }
    std::vector<uint8_t> Bytes = serializeCheckpoint(C);
    // Revive: same sessions, fresh fleet. The old fleet is terminal.
    Fleet = std::make_unique<MonitorFleet>(Prog, Opts);
    if (!Fleet->restore(std::move(C.Lanes))) {
      Finished = true;
      setError(ErrorOut, "internal error: revive after snapshot rejected");
      return std::nullopt;
    }
    return Bytes;
  }

  std::optional<uint64_t>
  restore(const std::vector<uint8_t> &Checkpoint,
          std::string *ErrorOut) override {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!controlReady(ErrorOut))
      return std::nullopt;
    if (!Fresh) {
      setError(ErrorOut,
               "restore is only valid before the first producer was opened");
      return std::nullopt;
    }
    DiagnosticEngine Diags;
    auto C = loadCheckpoint(Checkpoint, Prog, Diags);
    if (!C) {
      setError(ErrorOut, Diags.str());
      return std::nullopt;
    }
    uint64_t N = C->Lanes.size();
    if (!Fleet->restore(std::move(C->Lanes))) {
      setError(ErrorOut, "restore rejected: session already live, or the "
                         "engine is not migratable");
      return std::nullopt;
    }
    return N;
  }

  bool forkSession(SessionId Src, SessionId Dst,
                   std::string *ErrorOut) override {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!controlReady(ErrorOut))
      return false;
    std::string Err;
    if (!Fleet->forkSession(Src, Dst, &Err)) {
      setError(ErrorOut, std::move(Err));
      return false;
    }
    return true;
  }

  std::optional<FleetFinish> finish(std::string *ErrorOut) override {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!controlReady(ErrorOut))
      return std::nullopt;
    Fleet->finish();
    Finished = true;
    FleetFinish R;
    R.Outputs = Fleet->takeOutputs();
    R.Errors = Fleet->errors();
    R.FailedSessions = Fleet->stats().totalFailedSessions();
    R.TotalOutputs = Fleet->stats().totalOutputs();
    StatsCache = Fleet->stats().str();
    return R;
  }

  std::optional<std::string> statsText(std::string *ErrorOut) override {
    (void)ErrorOut;
    std::lock_guard<std::mutex> Lock(Mu);
    if (!StatsCache.empty())
      return StatsCache;
    return formatString("fleet running: shards=%u producers-open=%llu\n",
                        Fleet->shardCount(),
                        static_cast<unsigned long long>(
                            OpenProducers.load(std::memory_order_relaxed)));
  }

  bool shutdownServer(std::string *) override { return true; }

  /// Called by InProcessProducer::close() *after* its handle closed.
  void producerClosed() {
    OpenProducers.fetch_sub(1, std::memory_order_release);
  }

private:
  bool controlReady(std::string *ErrorOut) {
    if (Finished) {
      setError(ErrorOut, "fleet already finished");
      return false;
    }
    if (OpenProducers.load(std::memory_order_acquire) != 0) {
      setError(ErrorOut, "close all producers before control operations");
      return false;
    }
    return true;
  }

  const Program &Prog;
  FleetOptions Opts;
  uint64_t ProgramCk;
  std::unique_ptr<MonitorFleet> Fleet;
  std::mutex Mu; // guards fleet swaps and the control surface
  std::atomic<uint64_t> OpenProducers{0};
  bool Fresh = true; // no producer opened yet on this fleet state
  bool Finished = false;
  std::string StatsCache;
};

bool InProcessProducer::feed(SessionId Session, StreamId Input, Time Ts,
                             Value V) {
  if (Closed || !Handle.valid()) {
    if (Err.empty())
      Err = "producer is closed";
    return false;
  }
  FeedStatus S = Handle.tryFeed(Session, Input, Ts, V);
  if (S == FeedStatus::Ok)
    return true;
  if (S == FeedStatus::Closed) {
    Err = "producer handle rejected the record (fleet finished?)";
    return false;
  }
  // Backpressure: count the stall, then take the blocking path — the
  // record is accepted, never dropped.
  ++Busy;
  if (!Handle.feed(Session, Input, Ts, std::move(V))) {
    Err = "producer handle rejected the record (fleet finished?)";
    return false;
  }
  return true;
}

bool InProcessProducer::flush() {
  if (Closed || !Handle.valid())
    return false;
  Handle.flush();
  return true;
}

bool InProcessProducer::close() {
  if (Closed)
    return Err.empty();
  Closed = true;
  Handle.close();
  Client->producerClosed();
  return Err.empty();
}

// --- Remote ---------------------------------------------------------------

/// Hello/HelloAck on a fresh connection; false with \p Err set.
bool handshake(Transport &T, FrameDecoder &Dec, WireHelloAck &AckOut,
               std::string &Err) {
  if (!sendFrame(T, FrameType::Hello, encodeHello())) {
    Err = "transport error sending Hello";
    return false;
  }
  auto F = recvFrame(T, Dec, Err);
  if (!F)
    return false;
  if (F->Type == FrameType::Error) {
    auto Msg = decodeString(F->Payload.data(), F->Payload.size(), Err);
    Err = Msg ? *Msg : Err;
    return false;
  }
  if (F->Type != FrameType::HelloAck) {
    Err = formatString("expected HelloAck, got %s frame",
                       frameTypeName(F->Type));
    return false;
  }
  auto A = decodeHelloAck(F->Payload.data(), F->Payload.size(), Err);
  if (!A)
    return false;
  if (A->Version != WireFormatVersion) {
    Err = formatString("wire version mismatch: server speaks v%u, "
                       "this client v%u",
                       A->Version, WireFormatVersion);
    return false;
  }
  AckOut = *A;
  return true;
}

class RemoteProducer : public ClientProducer {
public:
  RemoteProducer(std::unique_ptr<Transport> T, FrameDecoder Dec)
      : Conn(std::move(T)), Dec(std::move(Dec)) {}
  ~RemoteProducer() override { close(); }

  bool feed(SessionId Session, StreamId Input, Time Ts, Value V) override {
    if (Closed || Dead) {
      if (Err.empty())
        Err = "producer is closed";
      return false;
    }
    Pending.Records.push_back({Session, Input, Ts, std::move(V)});
    if (Pending.Records.size() >= BatchSize)
      return flush();
    return true;
  }

  bool flush() override {
    if (Closed || Dead)
      return false;
    if (Pending.Records.empty())
      return true;
    if (!sendFrame(*Conn, FrameType::Batch, encodeEventBatch(Pending)))
      return die("transport error sending batch");
    Pending.clear();
    return drainAsync();
  }

  bool close() override {
    if (Closed)
      return !Dead;
    flush();
    Closed = true;
    if (!Dead) {
      if (!sendFrame(*Conn, FrameType::Finish,
                     encodeU64(FinishScopeProducer))) {
        die("transport error sending producer Finish");
      } else {
        // Busy frames in flight precede the ack; count them all.
        for (;;) {
          std::string E;
          auto F = recvFrame(*Conn, Dec, E);
          if (!F) {
            die(E);
            break;
          }
          if (F->Type == FrameType::Busy) {
            ++Busy;
            continue;
          }
          if (F->Type == FrameType::FinishAck)
            break;
          if (F->Type == FrameType::Error) {
            std::string DE;
            auto Msg = decodeString(F->Payload.data(), F->Payload.size(), DE);
            die(Msg ? *Msg : DE);
            break;
          }
          die(formatString("unexpected %s frame closing producer",
                           frameTypeName(F->Type)));
          break;
        }
      }
    }
    Conn->close();
    return !Dead;
  }

  uint64_t busySignals() const override { return Busy; }
  const std::string &error() const override { return Err; }

private:
  bool die(std::string Msg) {
    Dead = true;
    if (Err.empty())
      Err = std::move(Msg);
    return false;
  }

  /// Non-blocking drain of server->producer frames (Busy, Error) so a
  /// write-mostly producer never deadlocks against an unread socket.
  bool drainAsync() {
    for (;;) {
      while (auto F = Dec.next()) {
        if (F->Type == FrameType::Busy) {
          ++Busy;
        } else if (F->Type == FrameType::Error) {
          std::string DE;
          auto Msg = decodeString(F->Payload.data(), F->Payload.size(), DE);
          return die(Msg ? *Msg : "server error");
        } else {
          return die(formatString("unexpected %s frame on producer "
                                  "connection",
                                  frameTypeName(F->Type)));
        }
      }
      if (Dec.failed())
        return die(Dec.error());
      uint8_t Chunk[4096];
      ptrdiff_t N = Conn->tryRecv(Chunk, sizeof(Chunk));
      if (N == 0)
        return true;
      if (N < 0)
        return die("producer connection closed by server");
      Dec.append(Chunk, static_cast<size_t>(N));
    }
  }

  std::unique_ptr<Transport> Conn;
  FrameDecoder Dec;
  EventBatch Pending;
  size_t BatchSize = 256;
  uint64_t Busy = 0;
  bool Closed = false;
  bool Dead = false;
  std::string Err;
};

class RemoteClient : public FleetClient {
public:
  RemoteClient(TransportDialer Dial, std::unique_ptr<Transport> Ctl,
               FrameDecoder Dec)
      : Dial(std::move(Dial)), Ctl(std::move(Ctl)), Dec(std::move(Dec)) {}
  ~RemoteClient() override { Ctl->close(); }

  std::unique_ptr<ClientProducer>
  producer(std::string *ErrorOut) override {
    std::string Err;
    auto T = Dial(&Err);
    if (!T) {
      setError(ErrorOut, Err.empty() ? "cannot open producer connection"
                                     : Err);
      return nullptr;
    }
    FrameDecoder Dec;
    WireHelloAck Ack;
    if (!handshake(*T, Dec, Ack, Err)) {
      setError(ErrorOut, Err);
      return nullptr;
    }
    return std::make_unique<RemoteProducer>(std::move(T), std::move(Dec));
  }

  std::optional<std::vector<uint8_t>>
  snapshot(std::string *ErrorOut) override {
    if (!sendFrame(*Ctl, FrameType::Snapshot))
      return txError(ErrorOut), std::nullopt;
    auto F = expect(FrameType::SnapshotAck, ErrorOut);
    if (!F)
      return std::nullopt;
    return std::move(F->Payload);
  }

  std::optional<uint64_t>
  restore(const std::vector<uint8_t> &Checkpoint,
          std::string *ErrorOut) override {
    if (!sendFrame(*Ctl, FrameType::Restore, Checkpoint))
      return txError(ErrorOut), std::nullopt;
    auto F = expect(FrameType::RestoreAck, ErrorOut);
    if (!F)
      return std::nullopt;
    std::string Err;
    auto N = decodeU64(F->Payload.data(), F->Payload.size(), Err);
    if (!N) {
      setError(ErrorOut, Err);
      return std::nullopt;
    }
    return *N;
  }

  bool forkSession(SessionId Src, SessionId Dst,
                   std::string *ErrorOut) override {
    WireForkSession F;
    F.Src = Src;
    F.Dst = Dst;
    if (!sendFrame(*Ctl, FrameType::ForkSession, encodeForkSession(F))) {
      txError(ErrorOut);
      return false;
    }
    return expect(FrameType::ForkAck, ErrorOut).has_value();
  }

  std::optional<FleetFinish> finish(std::string *ErrorOut) override {
    if (!sendFrame(*Ctl, FrameType::Finish, encodeU64(FinishScopeFleet)))
      return txError(ErrorOut), std::nullopt;
    FleetFinish R;
    for (;;) {
      std::string Err;
      auto F = recvFrame(*Ctl, Dec, Err);
      if (!F) {
        setError(ErrorOut, Err);
        return std::nullopt;
      }
      if (F->Type == FrameType::Outputs) {
        auto Events = decodeOutputs(F->Payload.data(), F->Payload.size(), Err);
        if (!Events) {
          setError(ErrorOut, Err);
          return std::nullopt;
        }
        for (WireOutputRecord &E : *Events)
          R.Outputs.push_back(
              {E.Session, OutputEvent{E.Ts, E.Stream, std::move(E.V)}});
        continue;
      }
      if (F->Type == FrameType::FinishAck) {
        auto A = decodeFinishAck(F->Payload.data(), F->Payload.size(), Err);
        if (!A) {
          setError(ErrorOut, Err);
          return std::nullopt;
        }
        R.FailedSessions = A->FailedSessions;
        R.TotalOutputs = A->TotalOutputs;
        return R;
      }
      if (F->Type == FrameType::Error) {
        std::string DE;
        auto Msg = decodeString(F->Payload.data(), F->Payload.size(), DE);
        setError(ErrorOut, Msg ? *Msg : DE);
        return std::nullopt;
      }
      setError(ErrorOut, formatString("unexpected %s frame during finish",
                                      frameTypeName(F->Type)));
      return std::nullopt;
    }
  }

  std::optional<std::string> statsText(std::string *ErrorOut) override {
    if (!sendFrame(*Ctl, FrameType::Stats))
      return txError(ErrorOut), std::nullopt;
    auto F = expect(FrameType::StatsAck, ErrorOut);
    if (!F)
      return std::nullopt;
    std::string Err;
    auto S = decodeString(F->Payload.data(), F->Payload.size(), Err);
    if (!S) {
      setError(ErrorOut, Err);
      return std::nullopt;
    }
    return *S;
  }

  bool shutdownServer(std::string *ErrorOut) override {
    if (!sendFrame(*Ctl, FrameType::Shutdown)) {
      txError(ErrorOut);
      return false;
    }
    return expect(FrameType::ShutdownAck, ErrorOut).has_value();
  }

private:
  void txError(std::string *ErrorOut) {
    setError(ErrorOut, "transport error on the control connection");
  }

  /// Receives the next frame and requires \p Want; turns Error frames
  /// and surprises into ErrorOut.
  std::optional<WireFrame> expect(FrameType Want, std::string *ErrorOut) {
    std::string Err;
    auto F = recvFrame(*Ctl, Dec, Err);
    if (!F) {
      setError(ErrorOut, Err);
      return std::nullopt;
    }
    if (F->Type == Want)
      return F;
    if (F->Type == FrameType::Error) {
      std::string DE;
      auto Msg = decodeString(F->Payload.data(), F->Payload.size(), DE);
      setError(ErrorOut, Msg ? *Msg : DE);
      return std::nullopt;
    }
    setError(ErrorOut, formatString("expected %s, got %s frame",
                                    frameTypeName(Want),
                                    frameTypeName(F->Type)));
    return std::nullopt;
  }

  TransportDialer Dial;
  std::unique_ptr<Transport> Ctl;
  FrameDecoder Dec;
};

} // namespace

std::unique_ptr<FleetClient>
tessla::makeInProcessClient(const Program &Prog, FleetOptions Opts) {
  return std::make_unique<InProcessClient>(Prog, Opts);
}

std::unique_ptr<FleetClient>
tessla::makeRemoteClient(TransportDialer Dial, std::string *ErrorOut,
                         uint64_t *ProgramChecksumOut) {
  std::string Err;
  auto Ctl = Dial(&Err);
  if (!Ctl) {
    setError(ErrorOut, Err.empty() ? "cannot open control connection" : Err);
    return nullptr;
  }
  FrameDecoder Dec;
  WireHelloAck Ack;
  if (!handshake(*Ctl, Dec, Ack, Err)) {
    setError(ErrorOut, Err);
    return nullptr;
  }
  if (ProgramChecksumOut)
    *ProgramChecksumOut = Ack.ProgramChecksum;
  // Hand the handshake decoder over: bytes the transport delivered past
  // the HelloAck must not be lost.
  return std::make_unique<RemoteClient>(std::move(Dial), std::move(Ctl),
                                        std::move(Dec));
}

std::unique_ptr<FleetClient>
tessla::makeUnixSocketClient(const std::string &Path, std::string *ErrorOut,
                             uint64_t *ProgramChecksumOut) {
  return makeRemoteClient(
      [Path](std::string *Err) { return connectUnixSocket(Path, Err); },
      ErrorOut, ProgramChecksumOut);
}
