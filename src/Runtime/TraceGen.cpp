//===- Runtime/TraceGen.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceGen.h"

#include <algorithm>
#include <cmath>
#include <random>

using namespace tessla;
using namespace tessla::tracegen;

std::vector<TraceEvent> tracegen::randomInts(StreamId Id, size_t Count,
                                             int64_t Domain,
                                             uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> Dist(0, Domain - 1);
  std::vector<TraceEvent> Events;
  Events.reserve(Count);
  for (size_t I = 0; I != Count; ++I)
    Events.emplace_back(Id, static_cast<Time>(I + 1),
                        Value::integer(Dist(Rng)));
  return Events;
}

std::vector<TraceEvent> tracegen::dbLog(StreamId Insert, StreamId Delete,
                                        StreamId Access,
                                        const DbLogConfig &Config) {
  std::mt19937_64 Rng(Config.Seed);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::vector<TraceEvent> Events;
  Events.reserve(Config.Count);
  std::vector<int64_t> Live;
  int64_t NextId = 0;

  for (size_t I = 0; I != Config.Count; ++I) {
    Time Ts = static_cast<Time>(I + 1);
    double C = Coin(Rng);
    if (C < Config.InsertProb || Live.empty()) {
      Live.push_back(NextId);
      Events.emplace_back(Insert, Ts, Value::integer(NextId));
      ++NextId;
      continue;
    }
    C -= Config.InsertProb;
    std::uniform_int_distribution<size_t> Pick(0, Live.size() - 1);
    if (C < Config.DeleteProb) {
      size_t Idx = Pick(Rng);
      Events.emplace_back(Delete, Ts, Value::integer(Live[Idx]));
      Live[Idx] = Live.back();
      Live.pop_back();
      continue;
    }
    // Access: usually a live record, occasionally a missing one.
    if (Coin(Rng) < Config.BadAccessProb) {
      Events.emplace_back(Access, Ts, Value::integer(NextId + 1000000));
    } else {
      Events.emplace_back(Access, Ts, Value::integer(Live[Pick(Rng)]));
    }
  }
  return Events;
}

std::vector<TraceEvent> tracegen::dbPairLog(StreamId Db2, StreamId Db3,
                                            const DbPairConfig &Config) {
  std::mt19937_64 Rng(Config.Seed);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::uniform_int_distribution<Time> Lag(1, Config.MaxLag);
  std::vector<TraceEvent> Events;
  Events.reserve(2 * Config.Count);

  Time Ts = 0;
  for (size_t I = 0; I != Config.Count; ++I) {
    int64_t Id = static_cast<int64_t>(I);
    Ts += 1 + static_cast<Time>(Coin(Rng) * 5);
    Events.emplace_back(Db2, Ts, Value::integer(Id));
    // db3 follows, usually within the window.
    Time FollowLag = Coin(Rng) < Config.LateProb
                         ? Config.MaxLag + 1 + Lag(Rng)
                         : Lag(Rng);
    Events.emplace_back(Db3, Ts + FollowLag, Value::integer(Id));
  }
  // db3 events were appended out of order relative to later db2 events;
  // restore global timestamp order (stable to keep determinism).
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (std::get<1>(A) != std::get<1>(B))
                       return std::get<1>(A) < std::get<1>(B);
                     return std::get<0>(A) < std::get<0>(B);
                   });
  // Drop same-(stream, ts) duplicates the lag randomness may create.
  std::vector<TraceEvent> Deduped;
  Deduped.reserve(Events.size());
  for (TraceEvent &E : Events) {
    if (!Deduped.empty() &&
        std::get<0>(Deduped.back()) == std::get<0>(E) &&
        std::get<1>(Deduped.back()) == std::get<1>(E))
      continue;
    Deduped.push_back(std::move(E));
  }
  return Deduped;
}

std::vector<TraceEvent> tracegen::powerSignal(StreamId Id,
                                              const PowerConfig &Config) {
  std::mt19937_64 Rng(Config.Seed);
  std::normal_distribution<double> Noise(0.0, Config.Noise);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  std::vector<TraceEvent> Events;
  Events.reserve(Config.Count);

  const double SamplesPerDay = 86400.0 / static_cast<double>(Config.Period);
  for (size_t I = 0; I != Config.Count; ++I) {
    Time Ts = static_cast<Time>(I + 1) * Config.Period;
    double Phase = 2.0 * M_PI * static_cast<double>(I) / SamplesPerDay;
    double V = Config.Base + Config.DailyAmp * std::sin(Phase) +
               Noise(Rng);
    if (Coin(Rng) < Config.PeakProb)
      V *= Config.PeakScale;
    Events.emplace_back(Id, Ts, Value::floating(V));
  }
  return Events;
}
