//===- Runtime/MonitorFleet.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorFleet.h"

#include "tessla/Support/Format.h"

#include <algorithm>
#include <cassert>

using namespace tessla;

namespace {

/// One ingested record as it travels from the ingest thread to a shard.
struct Record {
  SessionId Session;
  StreamId Input;
  Time Ts;
  Value V;
};

using Batch = std::vector<Record>;

/// splitmix64 finalizer — sequential session ids must not all land on
/// shard (id % N).
uint64_t mixHash(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

namespace tessla {

/// Bounded single-producer single-consumer ring of batches. The producer
/// is the ingest thread, the consumer one worker. Slot contents are
/// published by the release store to Tail and reclaimed by the release
/// store to Head; blocking uses C++20 atomic wait/notify on those
/// counters. End-of-input is an in-band sentinel (empty batch) so the
/// consumer never needs to wait on anything but Tail.
class SpscBatchRing {
public:
  explicit SpscBatchRing(size_t Capacity)
      : Cap(std::max<size_t>(Capacity, 1)), Slots(Cap) {}

  /// Producer: blocks while the ring is full.
  void push(Batch B) {
    size_t T = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_acquire);
    while (T - H == Cap) {
      Head.wait(H, std::memory_order_acquire);
      H = Head.load(std::memory_order_acquire);
    }
    Slots[T % Cap] = std::move(B);
    Tail.store(T + 1, std::memory_order_release);
    Tail.notify_one();
    HighWater = std::max<uint64_t>(HighWater, T + 1 - H);
  }

  /// Consumer: blocks while empty; false on the end-of-input sentinel.
  bool pop(Batch &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    size_t T = Tail.load(std::memory_order_acquire);
    while (T == H) {
      Tail.wait(T, std::memory_order_acquire);
      T = Tail.load(std::memory_order_acquire);
    }
    Out = std::move(Slots[H % Cap]);
    Head.store(H + 1, std::memory_order_release);
    Head.notify_one();
    return !Out.empty();
  }

  /// Producer-side high-water mark (batches in flight after a push);
  /// read after the worker joined.
  uint64_t highWater() const { return HighWater; }

private:
  const size_t Cap;
  std::vector<Batch> Slots;
  std::atomic<size_t> Head{0};
  std::atomic<size_t> Tail{0};
  uint64_t HighWater = 0;
};

/// One worker shard: ring + thread + the sessions pinned here. All
/// members below `Thread` are touched only by the worker until it
/// joins; the join is the synchronization point for the final reads.
struct MonitorFleet::Shard {
  explicit Shard(size_t QueueCapacity) : Ring(QueueCapacity) {}

  struct SessionState {
    std::unique_ptr<Monitor> M;
    std::vector<OutputEvent> Outputs;
  };

  SpscBatchRing Ring;
  Batch Pending; // ingest-thread buffer, not yet handed off
  std::thread Thread;

  // Worker-owned state (ordered map => deterministic iteration).
  std::map<SessionId, SessionState> Sessions;
  ShardStats Stats;

  void run(const Program &Prog, const FleetOptions &Opts);
};

void MonitorFleet::Shard::run(const Program &Prog,
                              const FleetOptions &Opts) {
  Batch B;
  while (Ring.pop(B)) {
    ++Stats.BatchesDrained;
    for (Record &R : B) {
      SessionState &SS = Sessions[R.Session];
      if (!SS.M) {
        SS.M = std::make_unique<Monitor>(Prog);
        if (Opts.CollectOutputs) {
          auto *Outputs = &SS.Outputs;
          SS.M->setOutputHandler(
              [Outputs](Time Ts, StreamId Id, const Value &V) {
                // The handler's value is borrowed; recording it beyond
                // the callback requires a deep copy (see Monitor.h).
                Outputs->push_back({Ts, Id, V.deepCopy()});
              });
        }
      }
      ++Stats.EventsProcessed;
      if (!SS.M->failed())
        SS.M->feed(R.Input, R.Ts, std::move(R.V));
    }
    B.clear();
  }
  for (auto &[Id, SS] : Sessions) {
    SS.M->finish(Opts.Horizon);
    Stats.OutputsEmitted += SS.M->outputEvents();
    if (SS.M->failed())
      ++Stats.FailedSessions;
  }
  Stats.Sessions = Sessions.size();
  // QueueHighWater is producer-side state; finish() fills it in after
  // the join (reading it here would race with the last push).
}

MonitorFleet::MonitorFleet(const Program &Prog_, FleetOptions Opts_)
    : Prog(Prog_), Opts(Opts_) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
  if (Opts.BatchSize == 0)
    Opts.BatchSize = 1;
  Workers.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I) {
    Workers.push_back(std::make_unique<Shard>(Opts.QueueCapacity));
    Workers.back()->Pending.reserve(Opts.BatchSize);
  }
  for (auto &W : Workers)
    W->Thread = std::thread([this, S = W.get()] { S->run(Prog, Opts); });
}

MonitorFleet::~MonitorFleet() { finish(); }

unsigned MonitorFleet::shardOf(SessionId Session) const {
  return static_cast<unsigned>(mixHash(Session) % Workers.size());
}

bool MonitorFleet::feed(SessionId Session, StreamId Input, Time Ts,
                        Value V) {
  if (Finished)
    return false;
  Shard &S = *Workers[shardOf(Session)];
  S.Pending.push_back({Session, Input, Ts, std::move(V)});
  if (S.Pending.size() >= Opts.BatchSize)
    flushPending(shardOf(Session));
  return true;
}

void MonitorFleet::flushPending(unsigned ShardIdx) {
  Shard &S = *Workers[ShardIdx];
  if (S.Pending.empty())
    return;
  Batch B;
  B.reserve(Opts.BatchSize);
  B.swap(S.Pending);
  S.Ring.push(std::move(B));
}

void MonitorFleet::finish() {
  if (Finished)
    return;
  Finished = true;
  for (unsigned I = 0, E = static_cast<unsigned>(Workers.size()); I != E;
       ++I) {
    flushPending(I);
    Workers[I]->Ring.push(Batch()); // end-of-input sentinel
  }
  for (auto &W : Workers)
    W->Thread.join();
  Stats.Shards.clear();
  for (auto &W : Workers) {
    W->Stats.QueueHighWater = W->Ring.highWater();
    Stats.Shards.push_back(W->Stats);
  }
}

bool MonitorFleet::failed() const {
  return Stats.totalFailedSessions() != 0;
}

std::vector<SessionError> MonitorFleet::errors() const {
  assert(Finished && "errors() is valid after finish()");
  std::map<SessionId, std::string> Sorted;
  for (const auto &W : Workers)
    for (const auto &[Id, SS] : W->Sessions)
      if (SS.M->failed())
        Sorted[Id] = SS.M->errorMessage();
  std::vector<SessionError> Result;
  Result.reserve(Sorted.size());
  for (auto &[Id, Msg] : Sorted)
    Result.push_back({Id, std::move(Msg)});
  return Result;
}

std::vector<SessionOutputEvent> MonitorFleet::takeOutputs() {
  assert(Finished && "takeOutputs() is valid after finish()");
  // Sessions ascending; each shard's map is already ordered, so a merge
  // over the shard maps yields the global order. Within one session the
  // monitor emitted in (timestamp, stream definition order) already.
  std::map<SessionId, std::vector<OutputEvent> *> Merged;
  for (const auto &W : Workers)
    for (auto &[Id, SS] : W->Sessions)
      Merged[Id] = &SS.Outputs;
  std::vector<SessionOutputEvent> Result;
  size_t Total = 0;
  for (auto &[Id, Outs] : Merged)
    Total += Outs->size();
  Result.reserve(Total);
  for (auto &[Id, Outs] : Merged) {
    for (OutputEvent &E : *Outs)
      Result.push_back({Id, std::move(E)});
    Outs->clear();
  }
  return Result;
}

uint64_t FleetStats::totalEvents() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.EventsProcessed;
  return N;
}

uint64_t FleetStats::totalOutputs() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.OutputsEmitted;
  return N;
}

uint64_t FleetStats::totalSessions() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.Sessions;
  return N;
}

uint64_t FleetStats::totalFailedSessions() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.FailedSessions;
  return N;
}

std::string FleetStats::str() const {
  std::string Out = formatString(
      "fleet: %zu shard(s), %llu session(s), %llu event(s), "
      "%llu output(s)\n",
      Shards.size(), static_cast<unsigned long long>(totalSessions()),
      static_cast<unsigned long long>(totalEvents()),
      static_cast<unsigned long long>(totalOutputs()));
  for (size_t I = 0; I != Shards.size(); ++I) {
    const ShardStats &S = Shards[I];
    Out += formatString(
        "  shard %zu: sessions=%llu events=%llu batches=%llu "
        "queue-high-water=%llu outputs=%llu failed=%llu\n",
        I, static_cast<unsigned long long>(S.Sessions),
        static_cast<unsigned long long>(S.EventsProcessed),
        static_cast<unsigned long long>(S.BatchesDrained),
        static_cast<unsigned long long>(S.QueueHighWater),
        static_cast<unsigned long long>(S.OutputsEmitted),
        static_cast<unsigned long long>(S.FailedSessions));
  }
  return Out;
}

} // namespace tessla
