//===- Runtime/MonitorFleet.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorFleet.h"

#include "tessla/Support/Format.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

using namespace tessla;

namespace {

/// splitmix64 finalizer — sequential session ids must not all land on
/// shard (id % N).
uint64_t mixHash(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

namespace tessla {

/// Bounded single-producer single-consumer ring of EventBatches — one
/// per (producer, shard) pair. The producer is the handle's thread, the
/// consumer the shard's worker. Slot contents are published by the
/// release store to Tail and reclaimed by the release store to Head.
/// Only the producer blocks (backpressure, C++20 atomic wait on Head);
/// the consumer polls many rings and sleeps on the shard-level work
/// signal instead, so pop is non-blocking here.
class SpscBatchRing {
public:
  explicit SpscBatchRing(size_t Capacity)
      : Cap(std::max<size_t>(Capacity, 1)), Slots(Cap) {}

  /// Producer: blocks while the ring is full. Every entry into the full
  /// state counts one backpressure stall.
  void push(EventBatch B) {
    size_t T = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_acquire);
    if (T - H == Cap)
      ++Stalls;
    while (T - H == Cap) {
      Head.wait(H, std::memory_order_acquire);
      H = Head.load(std::memory_order_acquire);
    }
    Slots[T % Cap] = std::move(B);
    Tail.store(T + 1, std::memory_order_release);
    HighWater = std::max<uint64_t>(HighWater, T + 1 - H);
  }

  /// Producer: whether a push would complete without blocking. Exact
  /// from the producer's side — the consumer only ever *frees* slots, so
  /// a true result cannot be invalidated before the producer's own next
  /// push.
  bool canPush() const {
    size_t T = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_acquire);
    return T - H != Cap;
  }

  /// Consumer: the head batch's merge sequence, or nullopt when empty.
  /// Safe to read without popping — the producer cannot overwrite the
  /// slot until Head advances past it.
  std::optional<uint64_t> peekSeq() const {
    size_t H = Head.load(std::memory_order_relaxed);
    size_t T = Tail.load(std::memory_order_acquire);
    if (T == H)
      return std::nullopt;
    return Slots[H % Cap].Seq;
  }

  /// Consumer: false when empty.
  bool tryPop(EventBatch &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    size_t T = Tail.load(std::memory_order_acquire);
    if (T == H)
      return false;
    Out = std::move(Slots[H % Cap]);
    Head.store(H + 1, std::memory_order_release);
    Head.notify_one();
    return true;
  }

  /// Producer-side high-water mark (batches in flight after a push);
  /// read after the producers quiesced and the worker joined.
  uint64_t highWater() const { return HighWater; }

  /// Producer-side count of pushes that entered the full state; read
  /// under the same quiescence contract as highWater().
  uint64_t stalls() const { return Stalls; }

private:
  const size_t Cap;
  std::vector<EventBatch> Slots;
  std::atomic<size_t> Head{0};
  std::atomic<size_t> Tail{0};
  uint64_t HighWater = 0;
  uint64_t Stalls = 0;
};

/// One producer's fan-in: a private ring into every shard plus the
/// handle-thread-owned pending buffers. Lanes are registered under
/// AdminMu and published through LaneCount; workers never lock.
struct MonitorFleet::ProducerLane {
  std::vector<std::unique_ptr<SpscBatchRing>> Rings; // [shard]
  std::vector<EventBatch> Pending;                   // [shard]
  bool Closed = false; // written under AdminMu / owner thread
};

/// One worker shard: the consumer of every producer's ring for this
/// shard index, plus the sessions currently executing here. Members
/// below `Thread` are touched only by the worker until it joins; the
/// join is the synchronization point for the final reads.
struct MonitorFleet::Shard {
  explicit Shard(unsigned Idx) : Index(Idx) {}

  /// A session's final verdict, filled when the worker retires it at
  /// run() exit — errors()/takeOutputs() read one engine-agnostic
  /// representation.
  struct SessionState {
    std::unique_ptr<std::vector<OutputEvent>> Outputs;
    bool Failed = false;
    std::string Error;
  };

  /// Where a session lives inside this shard's engine.
  struct LaneRef {
    unsigned Lane = 0;
    bool StolenIn = false;
  };

  /// One migration-inbox message: a whole-lane hand-off (Lane set) or
  /// records forwarded by a stolen session's home shard. Restored marks
  /// a checkpoint-restored lane (MonitorFleet::restore): it lands on its
  /// *home* shard, so it is not pinned like a stolen one and does not
  /// count as a steal.
  struct InboxMsg {
    SessionId Session = 0;
    EventBatch Records;
    std::unique_ptr<EngineLaneState> Lane;
    bool Restored = false;
    /// Fork adoption: Lane is a fork snapshot to adopt as Session — not
    /// pinned, not a steal; acknowledge through MonitorFleet::ForkOutcome.
    bool Forked = false;
    /// Fork request: snapshot live session Session into new session
    /// ForkDst (MonitorFleet::forkSession). Relayed to the thief when
    /// Session was stolen.
    bool ForkReq = false;
    SessionId ForkDst = 0;
  };

  const unsigned Index;

  // Cross-thread coordination. WorkSignal is bumped on every push
  // destined for this shard (ring or inbox) and at finish; the worker
  // sleeps on it when idle. QueueDepth approximates the backlog
  // (records in rings + inbox) and drives the steal heuristic.
  // StealRequest holds an idle peer's shard index (-1 = none).
  std::atomic<uint64_t> WorkSignal{0};
  std::atomic<int64_t> QueueDepth{0};
  std::atomic<int> StealRequest{-1};

  std::mutex InboxMu;
  std::deque<InboxMsg> Inbox;

  std::thread Thread;

  // Worker-owned state (ordered map => deterministic iteration).
  std::map<SessionId, SessionState> Sessions; // retired at run() exit
  std::vector<EngineLaneState> Suspended;     // filled when suspending
  std::map<SessionId, unsigned> ForwardTo; // stolen session -> thief
  std::map<unsigned, EventBatch> ForwardBuf;
  // The shard's execution engine and its session -> lane map. Created
  // by the worker thread at run() start; at run() exit the lanes are
  // retired into Sessions so reporting is engine-agnostic. LaneOf is
  // unordered on purpose: the map is hit once per record, and the only
  // iterations are donation (tie-breaks are timing-dependent anyway),
  // the Auto engine switch (membership-only) and retirement, which
  // re-orders through the Sessions map.
  std::unique_ptr<ShardEngine> Engine;
  std::unordered_map<SessionId, LaneRef> LaneOf;
  // Auto-mode arrival observation: routed records and same-session run
  // count over the first AutoObservationRecords records. The verdict is
  // computed from exactly that prefix, so it is a deterministic
  // function of the shard's record sequence (batch boundaries only
  // affect *when* the switch executes, not what is decided).
  bool AutoPending = false;
  bool AutoDecided = false;
  uint64_t AutoRecords = 0;
  uint64_t AutoRuns = 0;
  SessionId AutoLastSession = 0;
  bool AutoHaveLast = false;
  ShardStats Stats;

  void run(MonitorFleet &F);
  void routeRecord(MonitorFleet &F, EventRecord &R);
  void processBatch(MonitorFleet &F, EventBatch &B);
  void flushForwards(MonitorFleet &F);
  bool drainInbox(MonitorFleet &F);
  void maybeDonate(MonitorFleet &F);
  void postStealRequests(MonitorFleet &F);
  void maybeSwitchEngine(MonitorFleet &F);
  void handleForkRequest(MonitorFleet &F, InboxMsg &Msg);
  void adoptFork(MonitorFleet &F, SessionId Dst, EngineLaneState Lane);
  void accumulateAggregateStats();
};

void MonitorFleet::Shard::routeRecord(MonitorFleet &F, EventRecord &R) {
  auto Fw = ForwardTo.find(R.Session);
  if (Fw != ForwardTo.end()) {
    // Stolen session: relay to its thief. This shard is the session's
    // home and its single forwarder, so relative record order survives.
    ForwardBuf[Fw->second].Records.push_back(std::move(R));
    ++Stats.RecordsForwarded;
    return;
  }
  if (AutoPending && !AutoDecided) {
    ++AutoRecords;
    if (!AutoHaveLast || R.Session != AutoLastSession) {
      ++AutoRuns;
      AutoLastSession = R.Session;
      AutoHaveLast = true;
    }
    if (AutoRecords >= F.Opts.AutoObservationRecords)
      AutoDecided = true; // verdict executes at the next batch boundary
  }
  auto [It, New] = LaneOf.try_emplace(R.Session, LaneRef{});
  if (New)
    It->second.Lane = Engine->addLane(R.Session);
  ++Stats.EventsProcessed;
  if (!Engine->laneFailed(It->second.Lane))
    Engine->feed(It->second.Lane, R.Input, R.Ts, std::move(R.V));
}

void MonitorFleet::Shard::processBatch(MonitorFleet &F, EventBatch &B) {
  ++Stats.BatchesDrained;
  for (EventRecord &R : B.Records)
    routeRecord(F, R);
  // Buffering engines only buffer here: the pump runs once the ring
  // merge loop has drained every immediately available batch, so one
  // lockstep sweep covers all sessions with work — the wider the sweep,
  // the more dispatch it amortizes. Eager engines applied the records
  // in routeRecord already.
  flushForwards(F);
  QueueDepth.fetch_sub(static_cast<int64_t>(B.Records.size()),
                       std::memory_order_relaxed);
}

void MonitorFleet::Shard::flushForwards(MonitorFleet &F) {
  for (auto &[Target, FB] : ForwardBuf) {
    if (FB.Records.empty())
      continue;
    Shard &T = *F.Workers[Target];
    T.QueueDepth.fetch_add(static_cast<int64_t>(FB.Records.size()),
                           std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> G(T.InboxMu);
      T.Inbox.push_back({0, std::move(FB), nullptr});
    }
    F.bumpSignal(T.Index);
    FB = EventBatch();
  }
}

bool MonitorFleet::Shard::drainInbox(MonitorFleet &F) {
  bool Progress = false;
  for (;;) {
    InboxMsg Msg;
    {
      std::lock_guard<std::mutex> G(InboxMu);
      if (Inbox.empty())
        break;
      Msg = std::move(Inbox.front());
      Inbox.pop_front();
    }
    Progress = true;
    if (Msg.ForkReq) {
      handleForkRequest(F, Msg);
    } else if (Msg.Lane && Msg.Forked) {
      adoptFork(F, Msg.Session, std::move(*Msg.Lane));
    } else if (Msg.Lane) {
      // Whole-lane hand-off. The FIFO inbox guarantees it precedes any
      // records the home shard forwards afterwards. The snapshot is
      // engine-agnostic, so the thief's engine need not match the
      // victim's (Auto shards decide independently). Checkpoint-restored
      // lanes arrive on their home shard: not pinned, not a steal; the
      // adoption count releases the restore() caller.
      assert(!LaneOf.count(Msg.Session) &&
             "restore/steal of a session already live on this shard");
      if (!Msg.Restored)
        ++Stats.SessionsStolenIn;
      LaneOf[Msg.Session] = {Engine->insertLane(std::move(*Msg.Lane)),
                             /*StolenIn=*/!Msg.Restored};
      if (Msg.Restored) {
        F.RestoresAdopted.fetch_add(1, std::memory_order_release);
        F.RestoresAdopted.notify_all();
      }
    } else {
      for (EventRecord &R : Msg.Records.Records)
        routeRecord(F, R);
      QueueDepth.fetch_sub(static_cast<int64_t>(Msg.Records.Records.size()),
                           std::memory_order_relaxed);
    }
  }
  return Progress;
}

void MonitorFleet::Shard::maybeDonate(MonitorFleet &F) {
  if (!F.Opts.WorkStealing || F.Workers.size() < 2)
    return;
  if (!Engine->supportsMigration())
    return; // native lanes stay put
  if (F.Finishing.load(std::memory_order_relaxed))
    return;
  int Thief = StealRequest.load(std::memory_order_relaxed);
  if (Thief < 0 || Thief == static_cast<int>(Index))
    return;
  int64_t MyDepth = QueueDepth.load(std::memory_order_relaxed);
  if (MyDepth < static_cast<int64_t>(F.Opts.StealBacklog))
    return;
  Shard &T = *F.Workers[Thief];
  // Don't ping-pong load onto a peer that is itself backed up.
  if (T.QueueDepth.load(std::memory_order_relaxed) * 2 > MyDepth)
    return;
  // Donation may run mid-merge-loop, before the boundary pump; consume
  // buffered lane records first so the donated snapshot is complete
  // (extractLane requires an idle lane).
  Engine->pump();
  // Donate the hottest home-owned session: past volume is the best
  // available predictor of future volume under skew.
  auto Best = LaneOf.end();
  uint64_t BestEvents = 0;
  for (auto It = LaneOf.begin(); It != LaneOf.end(); ++It) {
    const LaneRef &LR = It->second;
    if (LR.StolenIn || Engine->laneFailed(LR.Lane) ||
        !Engine->laneIdle(LR.Lane))
      continue;
    uint64_t E = Engine->laneInputEvents(LR.Lane);
    if (Best == LaneOf.end() || E > BestEvents) {
      Best = It;
      BestEvents = E;
    }
  }
  if (Best == LaneOf.end())
    return;
  SessionId Id = Best->first;
  auto Lane = std::make_unique<EngineLaneState>(
      Engine->extractLane(Best->second.Lane));
  LaneOf.erase(Best);
  ForwardTo[Id] = static_cast<unsigned>(Thief);
  ++Stats.SessionsStolenOut;
  {
    std::lock_guard<std::mutex> G(T.InboxMu);
    T.Inbox.push_back({Id, EventBatch(), std::move(Lane)});
  }
  F.bumpSignal(T.Index);
  StealRequest.store(-1, std::memory_order_relaxed);
}

void MonitorFleet::Shard::postStealRequests(MonitorFleet &F) {
  if (!Engine->supportsMigration())
    return; // a native shard cannot insert donated lanes
  // Standing requests: posted while idle regardless of current peer
  // depth, so a load spike that arrives after this worker went to sleep
  // still finds the request and wakes it with a donation.
  for (auto &W : F.Workers) {
    if (W->Index == Index)
      continue;
    int Expected = -1;
    W->StealRequest.compare_exchange_strong(Expected,
                                            static_cast<int>(Index),
                                            std::memory_order_relaxed);
  }
}

/// Auto mode: executes the arrival-pattern verdict at a batch boundary
/// (all lanes idle after the pump). Interleaved traffic keeps the
/// batched engine; chunky replay migrates every lane — through the same
/// extractLane/insertLane contract work stealing uses — into a fresh
/// per-session engine.
void MonitorFleet::Shard::maybeSwitchEngine(MonitorFleet &F) {
  if (!AutoPending || !AutoDecided)
    return;
  AutoPending = false;
  double MeanRun = static_cast<double>(AutoRecords) /
                   static_cast<double>(std::max<uint64_t>(AutoRuns, 1));
  if (MeanRun < F.Opts.AutoChunkThreshold)
    return; // interleaved: stay batched
  std::unique_ptr<ShardEngine> Next =
      makePerSessionEngine(F.Prog, F.Opts.CollectOutputs);
  for (auto &[Id, LR] : LaneOf)
    LR.Lane = Next->insertLane(Engine->extractLane(LR.Lane));
  Engine = std::move(Next);
}

/// Executes a fork request on the shard that currently runs the source
/// session. The snapshot is taken at a quiescent point (after a pump,
/// so the lane has no unconsumed buffered records) and shares all
/// aggregate state structurally — the fork itself never copies a node.
void MonitorFleet::Shard::handleForkRequest(MonitorFleet &F, InboxMsg &Msg) {
  auto Fw = ForwardTo.find(Msg.Session);
  if (Fw != ForwardTo.end()) {
    // The source was stolen: relay the request to its thief through the
    // same FIFO channel forwarded records use, so the fork point stays
    // ordered against records this shard already relayed.
    Shard &T = *F.Workers[Fw->second];
    {
      std::lock_guard<std::mutex> G(T.InboxMu);
      T.Inbox.push_back(std::move(Msg));
    }
    F.bumpSignal(T.Index);
    return;
  }
  auto It = LaneOf.find(Msg.Session);
  if (It == LaneOf.end()) {
    F.finishFork(-1); // source session is not live
    return;
  }
  // snapshotLane requires an idle lane; a buffering engine may still
  // hold records routed earlier in this batch.
  Engine->pump();
  EngineLaneState S = Engine->snapshotLane(It->second.Lane);
  S.Session = Msg.ForkDst;
  unsigned DstShard = F.shardOf(Msg.ForkDst);
  if (DstShard == Index) {
    adoptFork(F, Msg.ForkDst, std::move(S));
    return;
  }
  Shard &T = *F.Workers[DstShard];
  auto Lane = std::make_unique<EngineLaneState>(std::move(S));
  {
    std::lock_guard<std::mutex> G(T.InboxMu);
    InboxMsg M;
    M.Session = Msg.ForkDst;
    M.Lane = std::move(Lane);
    M.Forked = true;
    T.Inbox.push_back(std::move(M));
  }
  F.bumpSignal(DstShard);
}

/// Adopts a fork snapshot as new session \p Dst on this (its home)
/// shard and acknowledges the waiting forkSession() caller.
void MonitorFleet::Shard::adoptFork(MonitorFleet &F, SessionId Dst,
                                    EngineLaneState Lane) {
  if (LaneOf.count(Dst) || ForwardTo.count(Dst)) {
    F.finishFork(-2); // destination session is already live
    return;
  }
  LaneOf[Dst] = {Engine->insertLane(std::move(Lane)), /*StolenIn=*/false};
  ++Stats.SessionsForkedIn;
  F.finishFork(1);
}

/// Walks every runtime Value the engine still holds and accounts its
/// aggregate nodes: resident bytes (each node once, however many values
/// share it) and the shared/unique ownership split. Run at worker exit,
/// before the lanes are retired or extracted.
void MonitorFleet::Shard::accumulateAggregateStats() {
  std::unordered_set<const void *> Seen;
  Engine->visitValues([&](const Value &V) {
    V.forEachAggregateNode(
        [&](const void *Node, size_t Bytes, uint32_t Owners) {
          if (!Seen.insert(Node).second)
            return false; // subtree already accounted through another ref
          Stats.AggregateBytes += Bytes;
          if (Owners > 1)
            ++Stats.AggregateNodesShared;
          else
            ++Stats.AggregateNodesUnique;
          return true;
        });
  });
}

void MonitorFleet::Shard::run(MonitorFleet &F) {
  const unsigned NShards = static_cast<unsigned>(F.Workers.size());
  switch (F.Mode) {
  case FleetMode::PerSession:
    Engine = makePerSessionEngine(F.Prog, F.Opts.CollectOutputs);
    break;
  case FleetMode::Native:
    Engine = F.Opts.NativeFactory(F.Prog, F.Opts.CollectOutputs);
    break;
  case FleetMode::Auto: // resolved to Batched in the constructor
  case FleetMode::Batched:
    Engine = makeBatchedEngine(F.Prog, F.Opts.CollectOutputs);
    break;
  }
  AutoPending = F.AutoMode;
  std::vector<char> LaneClosed(F.Opts.MaxProducers, 0);
  unsigned ClosedLanes = 0;
  bool Announced = false;

  for (;;) {
    // Snapshot the signal before scanning: a push after the snapshot
    // makes the wait below return immediately (no lost wakeups).
    uint64_t Sig = WorkSignal.load(std::memory_order_acquire);
    bool Progress = drainInbox(F);

    // Merge the producer rings: always drain the lowest-sequence batch
    // available, which linearizes externally synchronized cross-producer
    // hand-offs of one session (see the header).
    for (;;) {
      // Select the lowest-sequence head batch, re-scanning until the
      // selection is stable. A single pass is not enough: a lower-seq
      // batch (e.g. the earlier half of a cross-producer session
      // hand-off) can become visible mid-scan, after its lane was
      // already peeked, and popping the higher-seq candidate would feed
      // the session's later records first. The confirming pass runs
      // after the acquire load of the candidate's Tail, which orders
      // every batch pushed-before the candidate, so a selection that
      // survives a full re-scan is the true minimum of all
      // already-pushed batches. Seqs are globally unique and this
      // worker is the sole consumer of its rings, so BestSeq strictly
      // decreases on every retry and the loop terminates.
      int BestLane = -1;
      uint64_t BestSeq = 0;
      for (;;) {
        unsigned N = F.LaneCount.load(std::memory_order_acquire);
        int Lane = -1;
        uint64_t Seq = 0;
        for (unsigned L = 0; L != N; ++L) {
          if (LaneClosed[L])
            continue;
          std::optional<uint64_t> S = F.Lanes[L]->Rings[Index]->peekSeq();
          if (S && (Lane < 0 || *S < Seq)) {
            Lane = static_cast<int>(L);
            Seq = *S;
          }
        }
        if (Lane == BestLane && (Lane < 0 || Seq == BestSeq))
          break;
        BestLane = Lane;
        BestSeq = Seq;
      }
      if (BestLane < 0)
        break;
      EventBatch B;
      bool Popped = F.Lanes[BestLane]->Rings[Index]->tryPop(B);
      assert(Popped && "sole consumer raced itself");
      (void)Popped;
      if (B.Close) {
        LaneClosed[BestLane] = 1;
        ++ClosedLanes;
      } else {
        processBatch(F, B);
      }
      Progress = true;
      drainInbox(F);
      maybeDonate(F);
    }

    // Batch boundary: every immediately available batch (and forwarded
    // record) has been routed into lane queues; one wide lockstep pump
    // executes them all. O(dirty lanes) — free when nothing arrived.
    Engine->pump();
    maybeSwitchEngine(F);

    if (F.Finishing.load(std::memory_order_acquire) &&
        ClosedLanes == F.LaneCount.load(std::memory_order_acquire)) {
      // All producer input drained here. Announce it; once every worker
      // has, no forwards can be created anymore, so an empty inbox is
      // final. Checking DrainedWorkers *before* the inbox makes the
      // exit race-free: a peer's forwards are pushed before it
      // announces.
      if (!Announced) {
        Announced = true;
        F.DrainedWorkers.fetch_add(1, std::memory_order_acq_rel);
        for (unsigned S = 0; S != NShards; ++S)
          F.bumpSignal(S);
      }
      if (F.DrainedWorkers.load(std::memory_order_acquire) == NShards) {
        std::lock_guard<std::mutex> G(InboxMu);
        if (Inbox.empty())
          break;
      }
    }

    if (!Progress) {
      if (F.Opts.WorkStealing && NShards > 1 &&
          !F.Finishing.load(std::memory_order_relaxed))
        postStealRequests(F);
      WorkSignal.wait(Sig, std::memory_order_acquire);
    }
  }

  if (F.Suspending.load(std::memory_order_acquire) &&
      Engine->supportsMigration()) {
    // Checkpoint: every ring and inbox is drained and the final pump
    // ran, so all lanes are idle — extract them whole (state, recorded
    // outputs, any unconsumed records) instead of finishing. suspend()
    // merges and sorts across shards.
    Stats.LockstepSweeps = Engine->sweeps();
    Stats.Engine = Engine->name();
    accumulateAggregateStats();
    Suspended.reserve(LaneOf.size());
    for (auto &[Id, LR] : LaneOf) {
      if (Engine->laneFailed(LR.Lane))
        ++Stats.FailedSessions;
      Stats.OutputsEmitted += Engine->laneOutputEvents(LR.Lane);
      Suspended.push_back(Engine->extractLane(LR.Lane));
    }
    Stats.Sessions = LaneOf.size();
    Engine.reset();
    return;
  }

  // Retire every lane into an engine-agnostic SessionState so
  // errors()/takeOutputs() read one representation.
  Engine->finishAll(F.Opts.Horizon);
  Stats.LockstepSweeps = Engine->sweeps();
  Stats.Engine = Engine->name();
  accumulateAggregateStats();
  for (auto &[Id, LR] : LaneOf) {
    SessionState SS;
    SS.Failed = Engine->laneFailed(LR.Lane);
    if (SS.Failed) {
      SS.Error = Engine->laneError(LR.Lane);
      ++Stats.FailedSessions;
    }
    if (F.Opts.CollectOutputs)
      SS.Outputs = std::make_unique<std::vector<OutputEvent>>(
          Engine->takeLaneOutputs(LR.Lane));
    Stats.OutputsEmitted += Engine->laneOutputEvents(LR.Lane);
    Sessions.emplace(Id, std::move(SS));
  }
  Stats.Sessions = LaneOf.size();
  // Destroy the engine before run() returns: a native engine must not
  // outlive the fleet's hold on its shared object.
  Engine.reset();
  // QueueHighWater is producer-side state; finish() fills it in after
  // the join (reading it here would race with the last push).
}

//===----------------------------------------------------------------------===//
// ProducerHandle
//===----------------------------------------------------------------------===//

bool ProducerHandle::feed(SessionId Session, StreamId Input, Time Ts,
                          Value V) {
  if (!Fleet)
    return false;
  return Fleet->laneFeed(Lane, Session, Input, Ts, std::move(V));
}

FeedStatus ProducerHandle::tryFeed(SessionId Session, StreamId Input,
                                   Time Ts, Value V) {
  if (!Fleet)
    return FeedStatus::Closed;
  return Fleet->laneTryFeed(Lane, Session, Input, Ts, std::move(V));
}

void ProducerHandle::flush() {
  if (Fleet)
    Fleet->laneFlush(Lane);
}

void ProducerHandle::close() {
  if (!Fleet)
    return;
  Fleet->laneClose(Lane);
  Fleet = nullptr;
}

//===----------------------------------------------------------------------===//
// MonitorFleet
//===----------------------------------------------------------------------===//

MonitorFleet::MonitorFleet(const Program &Prog_, FleetOptions Opts_)
    : Prog(Prog_), Opts(Opts_) {
  if (Opts.Shards == 0)
    Opts.Shards = 1;
  if (Opts.BatchSize == 0)
    Opts.BatchSize = 1;
  if (Opts.MaxProducers == 0)
    Opts.MaxProducers = 1;
  if (Opts.StealBacklog == 0)
    Opts.StealBacklog = 4 * Opts.BatchSize;
  // A fleet serves exactly one Program, so every session shares a spec
  // and Auto starts every shard on the batched engine; the per-shard
  // arrival heuristic may migrate a shard to per-session later.
  AutoMode = Opts.Mode == FleetMode::Auto;
  Mode = AutoMode ? FleetMode::Batched : Opts.Mode;
  if (Mode == FleetMode::Native && !Opts.NativeFactory) {
    Mode = FleetMode::PerSession;
    EngineFallback = "native engine unavailable: no NativeFactory "
                     "configured; using the per-session interpreter";
  }
  Lanes.resize(Opts.MaxProducers);
  Workers.reserve(Opts.Shards);
  for (unsigned I = 0; I != Opts.Shards; ++I)
    Workers.push_back(std::make_unique<Shard>(I));
  for (auto &W : Workers)
    W->Thread = std::thread([this, S = W.get()] { S->run(*this); });
}

MonitorFleet::~MonitorFleet() { finish(); }

unsigned MonitorFleet::shardOf(SessionId Session) const {
  return static_cast<unsigned>(mixHash(Session) % Workers.size());
}

void MonitorFleet::bumpSignal(unsigned ShardIdx) {
  Shard &S = *Workers[ShardIdx];
  S.WorkSignal.fetch_add(1, std::memory_order_release);
  S.WorkSignal.notify_one();
}

ProducerHandle MonitorFleet::producer() {
  std::lock_guard<std::mutex> G(AdminMu);
  if (Finished)
    return {};
  unsigned N = LaneCount.load(std::memory_order_relaxed);
  if (N == Opts.MaxProducers)
    return {};
  auto L = std::make_unique<ProducerLane>();
  L->Rings.reserve(Opts.Shards);
  L->Pending.resize(Opts.Shards);
  for (unsigned S = 0; S != Opts.Shards; ++S) {
    L->Rings.push_back(std::make_unique<SpscBatchRing>(Opts.QueueCapacity));
    L->Pending[S].Records.reserve(Opts.BatchSize);
  }
  Lanes[N] = std::move(L);
  // The release store publishes the fully built lane to the workers.
  LaneCount.store(N + 1, std::memory_order_release);
  return ProducerHandle(this, N);
}

bool MonitorFleet::laneFeed(unsigned LaneIdx, SessionId Session,
                            StreamId Input, Time Ts, Value V) {
  ProducerLane &L = *Lanes[LaneIdx];
  if (L.Closed)
    return false;
  unsigned S = shardOf(Session);
  EventBatch &P = L.Pending[S];
  P.Records.push_back({Session, Input, Ts, std::move(V)});
  if (P.Records.size() >= Opts.BatchSize)
    laneFlushShard(L, S);
  return true;
}

FeedStatus MonitorFleet::laneTryFeed(unsigned LaneIdx, SessionId Session,
                                     StreamId Input, Time Ts, Value V) {
  ProducerLane &L = *Lanes[LaneIdx];
  if (L.Closed)
    return FeedStatus::Closed;
  unsigned S = shardOf(Session);
  EventBatch &P = L.Pending[S];
  // Refuse before buffering: accepting the record would fill the batch
  // while the ring has no slot, and the resulting push would block.
  if (P.Records.size() + 1 >= Opts.BatchSize && !L.Rings[S]->canPush())
    return FeedStatus::WouldBlock;
  P.Records.push_back({Session, Input, Ts, std::move(V)});
  if (P.Records.size() >= Opts.BatchSize)
    laneFlushShard(L, S); // cannot block: canPush() held above
  return FeedStatus::Ok;
}

void MonitorFleet::laneFlushShard(ProducerLane &L, unsigned ShardIdx) {
  EventBatch &P = L.Pending[ShardIdx];
  if (P.Records.empty())
    return;
  P.Seq = NextBatchSeq.fetch_add(1, std::memory_order_relaxed);
  Workers[ShardIdx]->QueueDepth.fetch_add(
      static_cast<int64_t>(P.Records.size()), std::memory_order_relaxed);
  EventBatch B;
  B.Records.reserve(Opts.BatchSize);
  std::swap(B, P);
  L.Rings[ShardIdx]->push(std::move(B));
  bumpSignal(ShardIdx);
}

void MonitorFleet::laneFlush(unsigned LaneIdx) {
  ProducerLane &L = *Lanes[LaneIdx];
  if (L.Closed)
    return;
  for (unsigned S = 0; S != Workers.size(); ++S)
    laneFlushShard(L, S);
}

void MonitorFleet::laneClose(unsigned LaneIdx) {
  std::lock_guard<std::mutex> G(AdminMu);
  ProducerLane &L = *Lanes[LaneIdx];
  if (L.Closed)
    return;
  L.Closed = true;
  for (unsigned S = 0; S != Workers.size(); ++S) {
    laneFlushShard(L, S);
    EventBatch CloseB;
    CloseB.Close = true;
    CloseB.Seq = NextBatchSeq.fetch_add(1, std::memory_order_relaxed);
    L.Rings[S]->push(std::move(CloseB));
    bumpSignal(S);
  }
}

void MonitorFleet::joinAndCollect() {
  // Close any lanes whose handles are still open (contract: their
  // threads have quiesced by now).
  unsigned N = LaneCount.load(std::memory_order_acquire);
  for (unsigned L = 0; L != N; ++L)
    laneClose(L);
  for (unsigned S = 0; S != Workers.size(); ++S)
    bumpSignal(S); // covers the zero-producer case
  for (auto &W : Workers)
    W->Thread.join();
  Stats.Shards.clear();
  Stats.Producers = N;
  for (auto &W : Workers) {
    uint64_t HighWater = 0;
    uint64_t Stalls = 0;
    for (unsigned L = 0; L != N; ++L) {
      HighWater =
          std::max(HighWater, Lanes[L]->Rings[W->Index]->highWater());
      Stalls += Lanes[L]->Rings[W->Index]->stalls();
    }
    W->Stats.QueueHighWater = HighWater;
    W->Stats.BackpressureStalls = Stalls;
    Stats.Shards.push_back(W->Stats);
  }
}

void MonitorFleet::finish() {
  {
    std::lock_guard<std::mutex> G(AdminMu);
    if (Finished)
      return;
    Finished = true;
    Finishing.store(true, std::memory_order_release);
  }
  joinAndCollect();
}

std::vector<EngineLaneState> MonitorFleet::suspend(std::string *ErrorOut) {
  if (Mode == FleetMode::Native) {
    // Native lanes cannot be extracted (ShardEngine::supportsMigration
    // is false); run ordinary end-of-input semantics instead so the
    // fleet still terminates cleanly.
    if (ErrorOut)
      *ErrorOut = "cannot checkpoint a native-engine fleet: compiled "
                  "lanes are not migratable";
    finish();
    return {};
  }
  {
    std::lock_guard<std::mutex> G(AdminMu);
    if (Finished) {
      if (ErrorOut)
        *ErrorOut = "fleet already finished";
      return {};
    }
    Finished = true;
    Suspending.store(true, std::memory_order_release);
    Finishing.store(true, std::memory_order_release);
  }
  joinAndCollect();
  std::vector<EngineLaneState> All;
  for (auto &W : Workers) {
    for (EngineLaneState &L : W->Suspended)
      All.push_back(std::move(L));
    W->Suspended.clear();
  }
  std::sort(All.begin(), All.end(),
            [](const EngineLaneState &A, const EngineLaneState &B) {
              return A.Session < B.Session;
            });
  if (ErrorOut)
    ErrorOut->clear();
  return All;
}

bool MonitorFleet::restore(std::vector<EngineLaneState> LaneStates) {
  {
    std::lock_guard<std::mutex> G(AdminMu);
    if (Finished)
      return false;
  }
  if (Mode == FleetMode::Native)
    return false; // native engines cannot insert migrated lanes
  {
    std::set<SessionId> Seen;
    for (const EngineLaneState &L : LaneStates)
      if (!Seen.insert(L.Session).second)
        return false;
  }
  uint64_t Base = RestoresAdopted.load(std::memory_order_acquire);
  uint64_t Posted = LaneStates.size();
  for (EngineLaneState &L : LaneStates) {
    unsigned S = shardOf(L.Session);
    Shard &T = *Workers[S];
    auto Lane = std::make_unique<EngineLaneState>(std::move(L));
    {
      std::lock_guard<std::mutex> G(T.InboxMu);
      T.Inbox.push_back(
          {Lane->Session, EventBatch(), std::move(Lane), /*Restored=*/true});
    }
    bumpSignal(S);
  }
  // Wait until every worker adopted its lanes: records fed afterwards
  // can then never race a not-yet-inserted lane into a fresh one.
  uint64_t Cur = RestoresAdopted.load(std::memory_order_acquire);
  while (Cur < Base + Posted) {
    RestoresAdopted.wait(Cur, std::memory_order_acquire);
    Cur = RestoresAdopted.load(std::memory_order_acquire);
  }
  return true;
}

void MonitorFleet::finishFork(int Outcome) {
  ForkOutcome.store(Outcome, std::memory_order_release);
  ForkOutcome.notify_all();
}

bool MonitorFleet::forkSession(SessionId Src, SessionId Dst,
                               std::string *ErrorOut) {
  auto fail = [&](const char *Msg) {
    if (ErrorOut)
      *ErrorOut = Msg;
    return false;
  };
  if (Src == Dst)
    return fail("fork source and destination sessions must differ");
  if (Mode == FleetMode::Native)
    return fail("cannot fork sessions on a native-engine fleet: compiled "
                "lanes are not migratable");
  {
    std::lock_guard<std::mutex> G(AdminMu);
    if (Finished)
      return fail("fleet already finished");
  }
  std::lock_guard<std::mutex> G(ForkMu); // one fork in flight at a time
  // Quiesce ingest first. Producers are closed (control-op contract) but
  // their final batches may still sit in the rings, and the worker
  // drains its inbox *before* the rings — posting now would let the
  // fork request overtake the source session's own records. QueueDepth
  // counts ring + forwarded records from push to post-routing, so zero
  // everywhere means every record has reached its lane.
  for (auto &W : Workers)
    while (W->QueueDepth.load(std::memory_order_acquire) > 0)
      std::this_thread::yield();
  ForkOutcome.store(0, std::memory_order_release);
  unsigned S = shardOf(Src);
  Shard &T = *Workers[S];
  {
    std::lock_guard<std::mutex> IG(T.InboxMu);
    Shard::InboxMsg M;
    M.Session = Src;
    M.ForkReq = true;
    M.ForkDst = Dst;
    T.Inbox.push_back(std::move(M));
  }
  bumpSignal(S);
  int Out = ForkOutcome.load(std::memory_order_acquire);
  while (Out == 0) {
    ForkOutcome.wait(0, std::memory_order_acquire);
    Out = ForkOutcome.load(std::memory_order_acquire);
  }
  if (Out == 1) {
    if (ErrorOut)
      ErrorOut->clear();
    return true;
  }
  return fail(Out == -1 ? "fork source session is not live"
                        : "fork destination session is already live");
}

bool MonitorFleet::failed() const {
  return Stats.totalFailedSessions() != 0;
}

std::vector<SessionError> MonitorFleet::errors() const {
  assert(Finished && "errors() is valid after finish()");
  std::map<SessionId, std::string> Sorted;
  for (const auto &W : Workers)
    for (const auto &[Id, SS] : W->Sessions)
      if (SS.Failed)
        Sorted[Id] = SS.Error;
  std::vector<SessionError> Result;
  Result.reserve(Sorted.size());
  for (auto &[Id, Msg] : Sorted)
    Result.push_back({Id, std::move(Msg)});
  return Result;
}

std::vector<SessionOutputEvent> MonitorFleet::takeOutputs() {
  assert(Finished && "takeOutputs() is valid after finish()");
  // Sessions ascending; each session lives in exactly one shard's map
  // (its final owner after any migrations), so a merge over the shard
  // maps yields the global order. Within one session the monitor
  // emitted in (timestamp, stream definition order) already.
  std::map<SessionId, std::vector<OutputEvent> *> Merged;
  for (const auto &W : Workers)
    for (auto &[Id, SS] : W->Sessions)
      if (SS.Outputs)
        Merged[Id] = SS.Outputs.get();
  std::vector<SessionOutputEvent> Result;
  size_t Total = 0;
  for (auto &[Id, Outs] : Merged)
    Total += Outs->size();
  Result.reserve(Total);
  for (auto &[Id, Outs] : Merged) {
    for (OutputEvent &E : *Outs)
      Result.push_back({Id, std::move(E)});
    Outs->clear();
  }
  return Result;
}

uint64_t FleetStats::totalEvents() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.EventsProcessed;
  return N;
}

uint64_t FleetStats::totalOutputs() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.OutputsEmitted;
  return N;
}

uint64_t FleetStats::totalSessions() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.Sessions;
  return N;
}

uint64_t FleetStats::totalFailedSessions() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.FailedSessions;
  return N;
}

uint64_t FleetStats::totalSessionsStolen() const {
  uint64_t N = 0;
  for (const ShardStats &S : Shards)
    N += S.SessionsStolenIn;
  return N;
}

std::string ShardStats::str() const {
  // Stable key=value rendering: one format for `tessla-run --stats`,
  // FleetStats::str() and the service stats frame. Keys are append-only.
  return formatString(
      "engine=%s sessions=%llu events=%llu batches=%llu "
      "queue-high-water=%llu outputs=%llu failed=%llu "
      "stolen-in=%llu stolen-out=%llu forwarded=%llu sweeps=%llu "
      "backpressure-stalls=%llu forked-in=%llu agg-bytes=%llu "
      "agg-nodes-unique=%llu agg-nodes-shared=%llu",
      Engine.empty() ? "?" : Engine.c_str(),
      static_cast<unsigned long long>(Sessions),
      static_cast<unsigned long long>(EventsProcessed),
      static_cast<unsigned long long>(BatchesDrained),
      static_cast<unsigned long long>(QueueHighWater),
      static_cast<unsigned long long>(OutputsEmitted),
      static_cast<unsigned long long>(FailedSessions),
      static_cast<unsigned long long>(SessionsStolenIn),
      static_cast<unsigned long long>(SessionsStolenOut),
      static_cast<unsigned long long>(RecordsForwarded),
      static_cast<unsigned long long>(LockstepSweeps),
      static_cast<unsigned long long>(BackpressureStalls),
      static_cast<unsigned long long>(SessionsForkedIn),
      static_cast<unsigned long long>(AggregateBytes),
      static_cast<unsigned long long>(AggregateNodesUnique),
      static_cast<unsigned long long>(AggregateNodesShared));
}

std::string FleetStats::str() const {
  std::string Out = formatString(
      "fleet: %zu shard(s), %llu producer(s), %llu session(s), "
      "%llu event(s), %llu output(s), %llu stolen\n",
      Shards.size(), static_cast<unsigned long long>(Producers),
      static_cast<unsigned long long>(totalSessions()),
      static_cast<unsigned long long>(totalEvents()),
      static_cast<unsigned long long>(totalOutputs()),
      static_cast<unsigned long long>(totalSessionsStolen()));
  for (size_t I = 0; I != Shards.size(); ++I)
    Out += formatString("  shard %zu: %s\n", I, Shards[I].str().c_str());
  return Out;
}

} // namespace tessla
