//===- Runtime/MonitorPlan.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/MonitorPlan.h"

#include <algorithm>
#include <cassert>

using namespace tessla;

MonitorPlan MonitorPlan::compile(const AnalysisResult &Analysis) {
  MonitorPlan Plan;
  Plan.S = Analysis.sharedSpec();
  const Spec &S = *Plan.S;

  const MutabilityResult &Mut = Analysis.mutability();
  assert(Mut.Order.size() == S.numStreams() &&
         "analysis order must cover all streams");

  for (StreamId Id : Mut.Order) {
    const StreamDef &D = S.stream(Id);
    PlanStep Step;
    Step.Id = Id;
    Step.Kind = D.Kind;
    Step.Args = D.Args;
    Step.InPlace = Mut.Mutable[Id];
    if (D.Kind == StreamKind::Lift) {
      Step.Fn = D.Fn;
      Step.Events = builtinInfo(D.Fn).Events;
    }
    if (D.Kind == StreamKind::Const)
      Step.ConstVal = Value::fromLiteral(D.Literal);
    if (D.Kind == StreamKind::Unit)
      Step.ConstVal = Value::unit();
    Plan.Steps.push_back(std::move(Step));
  }

  std::vector<bool> NeedsLast(S.numStreams(), false);
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    const StreamDef &D = S.stream(Id);
    if (D.Kind == StreamKind::Last)
      NeedsLast[D.Args[0]] = true;
    if (D.Kind == StreamKind::Delay)
      Plan.Delays.push_back({Id, D.Args[0], D.Args[1]});
    if (D.IsOutput)
      Plan.Outputs.push_back(Id);
  }
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (NeedsLast[Id])
      Plan.LastSources.push_back(Id);
  return Plan;
}

std::string MonitorPlan::str() const {
  std::string Out;
  unsigned Index = 0;
  for (const PlanStep &Step : Steps) {
    const StreamDef &D = S->stream(Step.Id);
    std::string Kind;
    switch (Step.Kind) {
    case StreamKind::Input:
      Kind = "input";
      break;
    case StreamKind::Nil:
      Kind = "nil";
      break;
    case StreamKind::Unit:
      Kind = "unit";
      break;
    case StreamKind::Const:
      Kind = "const " + D.Literal.str();
      break;
    case StreamKind::Time:
      Kind = "time(" + S->stream(Step.Args[0]).Name + ")";
      break;
    case StreamKind::Lift: {
      std::vector<std::string> Args;
      for (StreamId A : Step.Args)
        Args.push_back(S->stream(A).Name);
      Kind = std::string(builtinInfo(Step.Fn).Name) + "(" +
             [&Args] {
               std::string Joined;
               for (size_t I = 0; I != Args.size(); ++I)
                 Joined += (I ? ", " : "") + Args[I];
               return Joined;
             }() +
             ")";
      break;
    }
    case StreamKind::Last:
      Kind = "last(" + S->stream(Step.Args[0]).Name + ", " +
             S->stream(Step.Args[1]).Name + ")";
      break;
    case StreamKind::Delay:
      Kind = "delay(" + S->stream(Step.Args[0]).Name + ", " +
             S->stream(Step.Args[1]).Name + ")";
      break;
    }
    Out += std::to_string(Index++) + ": " + D.Name + " = " + Kind;
    if (Step.InPlace && Step.Kind == StreamKind::Lift)
      Out += "   [in-place]";
    Out += '\n';
  }
  return Out;
}

uint32_t MonitorPlan::inPlaceStepCount() const {
  uint32_t Count = 0;
  for (const PlanStep &Step : Steps)
    if (Step.InPlace && Step.Kind == StreamKind::Lift)
      ++Count;
  return Count;
}
