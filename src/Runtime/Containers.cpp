//===- Runtime/Containers.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Value's aggregate surface: view and COW-handle constructors live here,
// where the payload types are complete.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Containers.h"

using namespace tessla;

Value Value::emptySet() { return Value::set(std::make_shared<SetData>()); }
Value Value::emptyMap() { return Value::map(std::make_shared<MapData>()); }
Value Value::emptyQueue() {
  return Value::queue(std::make_shared<QueueData>());
}

SetView Value::asSet() const {
  return SetView(std::get<std::shared_ptr<SetData>>(V).get());
}
MapView Value::asMap() const {
  return MapView(std::get<std::shared_ptr<MapData>>(V).get());
}
QueueView Value::asQueue() const {
  return QueueView(std::get<std::shared_ptr<QueueData>>(V).get());
}

// The uniqueness check must read the use count *before* copying the
// handle into the COW wrapper (the copy itself would push it to 2).
// Wrapper-unique + InPlace selects the destructive tier: the handle
// shares the wrapper, so the update is visible through this value —
// exactly the in-place regime's contract. Node-level uniqueness is
// checked separately inside the transient structure ops, so a wrapper
// that was forked from another session still path-copies shared nodes.

SetCow Value::setCow(bool InPlace) const {
  const auto &H = std::get<std::shared_ptr<SetData>>(V);
  if (InPlace && H.use_count() == 1)
    return SetCow(H);
  return SetCow(std::make_shared<SetData>(*H));
}

MapCow Value::mapCow(bool InPlace) const {
  const auto &H = std::get<std::shared_ptr<MapData>>(V);
  if (InPlace && H.use_count() == 1)
    return MapCow(H);
  return MapCow(std::make_shared<MapData>(*H));
}

QueueCow Value::queueCow(bool InPlace) const {
  const auto &H = std::get<std::shared_ptr<QueueData>>(V);
  if (InPlace && H.use_count() == 1)
    return QueueCow(H);
  return QueueCow(std::make_shared<QueueData>(*H));
}

const void *Value::aggregateIdentity() const {
  switch (kind()) {
  case Kind::Set:
    return std::get<std::shared_ptr<SetData>>(V).get();
  case Kind::Map:
    return std::get<std::shared_ptr<MapData>>(V).get();
  case Kind::Queue:
    return std::get<std::shared_ptr<QueueData>>(V).get();
  default:
    return nullptr;
  }
}

void Value::forEachAggregateNode(
    const std::function<bool(const void *, size_t, uint32_t)> &Callback)
    const {
  switch (kind()) {
  case Kind::Set: {
    const auto &H = std::get<std::shared_ptr<SetData>>(V);
    if (!Callback(H.get(), sizeof(SetData),
                  static_cast<uint32_t>(H.use_count())))
      return;
    H->Elems.forEachNode(Callback);
    return;
  }
  case Kind::Map: {
    const auto &H = std::get<std::shared_ptr<MapData>>(V);
    if (!Callback(H.get(), sizeof(MapData),
                  static_cast<uint32_t>(H.use_count())))
      return;
    H->Entries.forEachNode(Callback);
    return;
  }
  case Kind::Queue: {
    const auto &H = std::get<std::shared_ptr<QueueData>>(V);
    if (!Callback(H.get(), sizeof(QueueData),
                  static_cast<uint32_t>(H.use_count())))
      return;
    H->Elems.forEachNode(Callback);
    return;
  }
  default:
    return;
  }
}
