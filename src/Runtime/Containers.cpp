//===- Runtime/Containers.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Containers.h"

using namespace tessla;

std::vector<Value> SetData::items() const {
  if (IsMutable)
    return std::vector<Value>(Mutable.begin(), Mutable.end());
  return Persistent.items();
}

const Value *MapData::find(const Value &Key) const {
  if (IsMutable) {
    auto It = Mutable.find(Key);
    return It == Mutable.end() ? nullptr : &It->second;
  }
  return Persistent.find(Key);
}

std::vector<std::pair<Value, Value>> MapData::items() const {
  if (IsMutable)
    return std::vector<std::pair<Value, Value>>(Mutable.begin(),
                                                Mutable.end());
  return Persistent.items();
}

std::vector<Value> QueueData::items() const {
  if (IsMutable)
    return std::vector<Value>(Mutable.begin(), Mutable.end());
  std::vector<Value> Out;
  Out.reserve(Persistent.size());
  Persistent.forEach([&Out](const Value &V) { Out.push_back(V); });
  return Out;
}

std::shared_ptr<SetData> tessla::makeSetData(bool IsMutable) {
  return std::make_shared<SetData>(IsMutable);
}
std::shared_ptr<MapData> tessla::makeMapData(bool IsMutable) {
  return std::make_shared<MapData>(IsMutable);
}
std::shared_ptr<QueueData> tessla::makeQueueData(bool IsMutable) {
  return std::make_shared<QueueData>(IsMutable);
}
