//===- Runtime/Checkpoint.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
// The .tcp checkpoint writer and loader. See Runtime/Checkpoint.h for
// the layout. Mirrors the .tpb discipline: deterministic writer,
// hostile-input loader — every read bounds-checked, every array length
// validated against the Program the caller loaded.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Checkpoint.h"

#include "tessla/Program/BinaryCodec.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Support/Format.h"

#include <cstdio>
#include <cstring>

using namespace tessla;
using bc::ByteReader;
using bc::ByteWriter;
using bc::DecodeContext;

namespace {

constexpr uint32_t TagMeta = bc::fourCC('M', 'E', 'T', 'A');
constexpr uint32_t TagLanes = bc::fourCC('L', 'A', 'N', 'E');

void writeLane(ByteWriter &W, const EngineLaneState &L,
               bc::ValueEncodeShare &Share) {
  W.u64(L.Session);
  W.i64(L.PendingTs);
  uint8_t Flags = 0;
  if (L.CalcDone)
    Flags |= 1;
  if (L.Failed)
    Flags |= 2;
  W.u8(Flags);
  W.str(L.Error);
  W.u64(L.NumFed);
  W.u64(L.NumOutputs);
  W.u64(L.NumCalcRuns);

  W.u32(static_cast<uint32_t>(L.Cur.size()));
  for (const Value &V : L.Cur)
    bc::writeValue(W, V, &Share);
  for (char P : L.Present)
    W.u8(P ? 1 : 0);

  W.u32(static_cast<uint32_t>(L.LastVal.size()));
  for (const Value &V : L.LastVal)
    bc::writeValue(W, V, &Share);
  for (char P : L.LastInit)
    W.u8(P ? 1 : 0);

  W.u32(static_cast<uint32_t>(L.NextTs.size()));
  for (Time T : L.NextTs)
    W.i64(T);
  for (char P : L.NextTsSet)
    W.u8(P ? 1 : 0);

  W.u32(static_cast<uint32_t>(L.Queue.size()));
  for (const EnginePendingRecord &R : L.Queue) {
    W.u32(R.Input);
    W.i64(R.Ts);
    bc::writeValue(W, R.V, &Share);
  }

  W.u32(static_cast<uint32_t>(L.Outputs.size()));
  for (const OutputEvent &E : L.Outputs) {
    W.i64(E.Ts);
    W.u32(E.Id);
    bc::writeValue(W, E.V, &Share);
  }
}

bool readLane(ByteReader &R, DecodeContext &Ctx, const Program &P,
              size_t LaneIdx, EngineLaneState &L,
              bc::ValueDecodeShare &Share) {
  auto fail = [&](const char *What) {
    return Ctx.fail(formatString("lane #%zu: %s", LaneIdx, What));
  };
  const uint32_t NumStreams = P.spec().numStreams();
  const size_t SlotCount = static_cast<size_t>(P.numValueSlots()) + 1;

  L.Session = R.u64();
  L.PendingTs = R.i64();
  uint8_t Flags = R.u8();
  if (Flags & ~uint8_t(3))
    return fail("unknown flag bits");
  L.CalcDone = (Flags & 1) != 0;
  L.Failed = (Flags & 2) != 0;
  L.Error = R.str();
  L.NumFed = R.u64();
  L.NumOutputs = R.u64();
  L.NumCalcRuns = R.u64();
  if (R.failed())
    return fail("truncated header");

  uint32_t NCur = R.u32();
  if (NCur != SlotCount)
    return fail("slot table size disagrees with the program");
  if (NCur > R.remaining())
    return fail("slot count exceeds the remaining payload");
  L.Cur.reserve(NCur);
  for (uint32_t I = 0; I != NCur && Ctx.Ok && !R.failed(); ++I)
    L.Cur.push_back(bc::readValue(R, Ctx, 0, &Share));
  L.Present.resize(NCur, 0);
  for (uint32_t I = 0; I != NCur; ++I)
    L.Present[I] = R.u8() ? 1 : 0;
  if (!Ctx.Ok || R.failed())
    return fail("truncated slot table");

  uint32_t NLast = R.u32();
  if (NLast != P.lastSlots().size())
    return fail("last-slot table size disagrees with the program");
  if (NLast > R.remaining())
    return fail("last-slot count exceeds the remaining payload");
  L.LastVal.reserve(NLast);
  for (uint32_t I = 0; I != NLast && Ctx.Ok && !R.failed(); ++I)
    L.LastVal.push_back(bc::readValue(R, Ctx, 0, &Share));
  L.LastInit.resize(NLast, 0);
  for (uint32_t I = 0; I != NLast; ++I)
    L.LastInit[I] = R.u8() ? 1 : 0;
  if (!Ctx.Ok || R.failed())
    return fail("truncated last-slot table");

  uint32_t NDelay = R.u32();
  if (NDelay != P.delays().size())
    return fail("delay table size disagrees with the program");
  if (static_cast<uint64_t>(NDelay) * 9 > R.remaining())
    return fail("delay count exceeds the remaining payload");
  L.NextTs.reserve(NDelay);
  for (uint32_t I = 0; I != NDelay; ++I)
    L.NextTs.push_back(R.i64());
  L.NextTsSet.resize(NDelay, 0);
  for (uint32_t I = 0; I != NDelay; ++I)
    L.NextTsSet[I] = R.u8() ? 1 : 0;
  if (R.failed())
    return fail("truncated delay table");

  uint32_t NQueue = R.u32();
  if (R.failed() || NQueue > R.remaining())
    return fail("queued-record count exceeds the remaining payload");
  L.Queue.reserve(NQueue);
  for (uint32_t I = 0; I != NQueue && Ctx.Ok && !R.failed(); ++I) {
    EnginePendingRecord Rec;
    Rec.Input = R.u32();
    Rec.Ts = R.i64();
    Rec.V = bc::readValue(R, Ctx, 0, &Share);
    if (Rec.Input >= NumStreams)
      return fail("queued record references a stream out of range");
    L.Queue.push_back(std::move(Rec));
  }
  if (!Ctx.Ok || R.failed())
    return fail("truncated queued records");

  uint32_t NOut = R.u32();
  if (R.failed() || NOut > R.remaining())
    return fail("output count exceeds the remaining payload");
  L.Outputs.reserve(NOut);
  for (uint32_t I = 0; I != NOut && Ctx.Ok && !R.failed(); ++I) {
    OutputEvent E;
    E.Ts = R.i64();
    E.Id = R.u32();
    E.V = bc::readValue(R, Ctx, 0, &Share);
    if (E.Id >= NumStreams)
      return fail("output event references a stream out of range");
    L.Outputs.push_back(std::move(E));
  }
  if (!Ctx.Ok || R.failed())
    return fail("truncated outputs");
  return true;
}

} // namespace

uint64_t tessla::programChecksum(const Program &P) {
  std::vector<uint8_t> Bytes = serializeProgram(P);
  return tpbChecksum(Bytes.data(), Bytes.size());
}

std::vector<uint8_t> tessla::serializeCheckpoint(const FleetCheckpoint &C) {
  ByteWriter MetaW;
  MetaW.u64(C.ProgramChecksum);
  MetaW.u32(C.SourceShards);
  MetaW.u64(C.Lanes.size());

  ByteWriter LaneW;
  LaneW.u64(C.Lanes.size());
  // One share context across every lane: aggregates structurally shared
  // between lanes (e.g. a forked session's state) encode once.
  bc::ValueEncodeShare Share;
  for (const EngineLaneState &L : C.Lanes)
    writeLane(LaneW, L, Share);

  const std::pair<uint32_t, const ByteWriter *> Sections[] = {
      {TagMeta, &MetaW},
      {TagLanes, &LaneW},
  };
  ByteWriter Body;
  Body.u32(static_cast<uint32_t>(std::size(Sections)));
  for (const auto &[Tag, W] : Sections) {
    Body.u32(Tag);
    Body.u64(W->data().size());
    Body.bytes(*W);
  }

  ByteWriter Out;
  for (uint8_t M : TCPMagic)
    Out.u8(M);
  Out.u32(TCPFormatVersion);
  Out.u64(tpbChecksum(Body.data().data(), Body.data().size()));
  Out.bytes(Body);
  return Out.take();
}

std::optional<FleetCheckpoint>
tessla::loadCheckpoint(const uint8_t *Data, size_t Size, const Program &P,
                       DiagnosticEngine &Diags) {
  DecodeContext Ctx{Diags, "tcp"};
  auto fail = [&](std::string Msg) {
    Ctx.fail(std::move(Msg));
    return std::nullopt;
  };

  // --- Header. ---
  if (Size < TCPChecksumStart + 4)
    return fail("checkpoint truncated (smaller than the fixed header)");
  if (std::memcmp(Data, TCPMagic, sizeof(TCPMagic)) != 0)
    return fail("not a TeSSLa checkpoint (bad magic)");
  ByteReader Header(Data + 4, 12);
  uint32_t Version = Header.u32();
  uint64_t Checksum = Header.u64();
  if (Version != TCPFormatVersion)
    return fail(formatString(
        "unsupported checkpoint format version %u (this build reads %u)",
        Version, TCPFormatVersion));
  if (tpbChecksum(Data + TCPChecksumStart, Size - TCPChecksumStart) !=
      Checksum)
    return fail("content checksum mismatch (truncated or corrupted "
                "checkpoint)");

  // --- Section table: one linear walk with absolute offsets. ---
  struct SectionRef {
    size_t Off = 0;
    size_t Len = 0;
    bool Present = false;
  };
  SectionRef Meta, Lanes;
  {
    ByteReader T(Data + TCPChecksumStart, 4);
    uint32_t N = T.u32();
    if (T.failed() || N > 64)
      return fail("malformed section table");
    size_t Cursor = TCPChecksumStart + 4;
    for (uint32_t I = 0; I != N; ++I) {
      if (Size - Cursor < 12)
        return fail("section table entry overruns the checkpoint");
      ByteReader E(Data + Cursor, 12);
      uint32_t Tag = E.u32();
      uint64_t Len = E.u64();
      Cursor += 12;
      if (Len > Size - Cursor)
        return fail("section '" + bc::fourCCName(Tag) +
                    "' overruns the checkpoint");
      SectionRef *Ref = Tag == TagMeta    ? &Meta
                        : Tag == TagLanes ? &Lanes
                                          : nullptr;
      if (Ref) {
        if (Ref->Present)
          return fail("duplicate section '" + bc::fourCCName(Tag) + "'");
        *Ref = {Cursor, static_cast<size_t>(Len), true};
      } // unknown tags are skipped (forward compatibility)
      Cursor += static_cast<size_t>(Len);
    }
    if (Cursor != Size)
      return fail("trailing bytes after the last section");
  }
  if (!Meta.Present)
    return fail("missing required section 'META'");
  if (!Lanes.Present)
    return fail("missing required section 'LANE'");

  FleetCheckpoint C;

  // --- META: the program binding. ---
  {
    ByteReader R(Data + Meta.Off, Meta.Len);
    C.ProgramChecksum = R.u64();
    C.SourceShards = R.u32();
    uint64_t NumLanes = R.u64();
    if (R.failed() || !R.atEnd())
      return fail("malformed section 'META'");
    uint64_t Expected = programChecksum(P);
    if (C.ProgramChecksum != Expected)
      return fail(formatString(
          "checkpoint was taken from a different program (checkpoint "
          "%016llx, loaded program %016llx)",
          static_cast<unsigned long long>(C.ProgramChecksum),
          static_cast<unsigned long long>(Expected)));
    (void)NumLanes; // cross-checked against the LANE section below
  }

  // --- LANE: the lane snapshots. ---
  {
    ByteReader R(Data + Lanes.Off, Lanes.Len);
    uint64_t N = R.u64();
    if (R.failed() || N > R.remaining())
      return fail("lane count exceeds the section payload");
    C.Lanes.reserve(N);
    uint64_t PrevSession = 0;
    bc::ValueDecodeShare Share; // restores cross-lane structural sharing
    for (uint64_t I = 0; I != N; ++I) {
      EngineLaneState L;
      if (!readLane(R, Ctx, P, static_cast<size_t>(I), L, Share))
        return std::nullopt;
      if (I != 0 && L.Session <= PrevSession)
        return fail("lane sessions not strictly ascending");
      PrevSession = L.Session;
      C.Lanes.push_back(std::move(L));
    }
    if (!R.atEnd())
      return fail("trailing bytes in section 'LANE'");
  }
  return C;
}

std::optional<FleetCheckpoint>
tessla::loadCheckpoint(const std::vector<uint8_t> &Bytes, const Program &P,
                       DiagnosticEngine &Diags) {
  return loadCheckpoint(Bytes.data(), Bytes.size(), P, Diags);
}

bool tessla::writeCheckpointFile(const FleetCheckpoint &C,
                                 const std::string &Path,
                                 DiagnosticEngine &Diags) {
  std::vector<uint8_t> Bytes = serializeCheckpoint(C);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Diags.error("tcp: cannot open '" + Path + "' for writing");
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Bytes.size();
  if (!Ok)
    Diags.error("tcp: short write to '" + Path + "'");
  return Ok;
}

std::optional<FleetCheckpoint>
tessla::loadCheckpointFile(const std::string &Path, const Program &P,
                           DiagnosticEngine &Diags) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Diags.error("tcp: cannot open '" + Path + "'");
    return std::nullopt;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return loadCheckpoint(Bytes, P, Diags);
}

std::optional<std::vector<uint8_t>>
tessla::checkpointFleet(MonitorFleet &Fleet, const Program &P,
                        std::string *ErrorOut) {
  std::string Err;
  FleetCheckpoint C;
  C.SourceShards = Fleet.shardCount();
  C.Lanes = Fleet.suspend(&Err);
  if (!Err.empty()) {
    if (ErrorOut)
      *ErrorOut = std::move(Err);
    return std::nullopt;
  }
  C.ProgramChecksum = programChecksum(P);
  return serializeCheckpoint(C);
}
