//===- Runtime/BatchedMonitor.cpp -------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The lockstep sweep mirrors Monitor::runCalc case by case: every opcode
// is decoded once per step and applied to all active lanes before the
// next step runs, with slot state striped Slot * LaneCap + Lane so one
// step's sweep walks contiguous rows. Any observable divergence from
// Monitor — outputs, failure points, messages — is a bug; the comments
// below call out the places where the correspondence is subtle.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/BatchedMonitor.h"

#include "tessla/Support/Format.h"

#include <cassert>
#include <limits>

using namespace tessla;

BatchedMonitor::BatchedMonitor(const Program &Prog_, bool CollectOutputs_)
    : Prog(Prog_), CollectOutputs(CollectOutputs_),
      // +1: the shared dead slot of nil streams stays never-present,
      // exactly as in Monitor's AoS layout.
      NumSlots(Prog_.numValueSlots() + 1u) {}

void BatchedMonitor::failLane(uint32_t Lane, std::string Message) {
  Failed[Lane] = 1;
  AnyFailed = true;
  ErrMsg[Lane] = std::move(Message);
}

void BatchedMonitor::failLaneAt(uint32_t Lane, Time Ts, StreamId Id,
                                const std::string &Message) {
  // Same rendering as Monitor::failAt.
  failLane(Lane, formatString("at t=%lld, stream '%s': %s",
                              static_cast<long long>(Ts),
                              Prog.spec().stream(Id).Name.c_str(),
                              Message.c_str()));
}

void BatchedMonitor::setLane(SlotId Slot, uint32_t Lane, Value V) {
  size_t I = idx(Slot, Lane);
  Cur[I] = std::move(V);
  if (!Present[I]) {
    Present[I] = 1;
    Touched[Lane].push_back(Slot);
  }
}

void BatchedMonitor::growLanes(size_t NewCap) {
  // Re-stripe the SoA rows to the wider stride.
  auto Restripe = [&](auto &Vec, size_t Rows) {
    std::remove_reference_t<decltype(Vec)> New(Rows * NewCap);
    for (size_t R = 0; R != Rows; ++R)
      for (size_t L = 0; L != NumLanes; ++L)
        New[R * NewCap + L] = std::move(Vec[R * LaneCap + L]);
    Vec = std::move(New);
  };
  Restripe(Cur, NumSlots);
  Restripe(Present, NumSlots);
  Restripe(LastVal, Prog.lastSlots().size());
  Restripe(LastInit, Prog.lastSlots().size());
  Restripe(NextTs, Prog.delays().size());
  Restripe(NextTsSet, Prog.delays().size());
  LaneCap = NewCap;

  Session.resize(NewCap, 0);
  Live.resize(NewCap, 0);
  Failed.resize(NewCap, 0);
  CalcDone.resize(NewCap, 0);
  FinishedL.resize(NewCap, 0);
  PendingTs.resize(NewCap, 0);
  RunTs.resize(NewCap, 0);
  ErrMsg.resize(NewCap);
  NumFed.resize(NewCap, 0);
  NumOutputs.resize(NewCap, 0);
  NumCalcRuns.resize(NewCap, 0);
  Queue.resize(NewCap);
  QueuePos.resize(NewCap, 0);
  Touched.resize(NewCap);
  Outputs.resize(NewCap);
  InDirty.resize(NewCap, 0);
}

unsigned BatchedMonitor::allocLane(SessionId Id) {
  uint32_t L;
  if (!FreeLanes.empty()) {
    L = FreeLanes.back();
    FreeLanes.pop_back();
  } else {
    if (NumLanes == LaneCap)
      growLanes(LaneCap ? LaneCap * 2 : 8);
    L = NumLanes++;
  }
  Live[L] = 1;
  ++NumLive;
  Session[L] = Id;
  Failed[L] = 0;
  CalcDone[L] = 0;
  FinishedL[L] = 0;
  PendingTs[L] = 0;
  RunTs[L] = 0;
  ErrMsg[L].clear();
  NumFed[L] = NumOutputs[L] = NumCalcRuns[L] = 0;
  Queue[L].clear();
  QueuePos[L] = 0;
  Touched[L].clear();
  Outputs[L].clear();
  assert(!InDirty[L] && "freed lanes leave the dirty worklist");
  return L;
}

unsigned BatchedMonitor::addLane(SessionId Id) {
  // A fresh lane is a freshly constructed Monitor: PendingTs = 0 with
  // the calculation not yet run, so the timestamp-0 section (constants
  // firing, delays arming) runs before the lane's first event even when
  // the session joins mid-stream.
  return allocLane(Id);
}

void BatchedMonitor::clearLaneRows(uint32_t Lane) {
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    size_t I = idx(Slot, Lane);
    Cur[I] = Value();
    Present[I] = 0;
  }
  for (size_t R = 0, E = Prog.lastSlots().size(); R != E; ++R) {
    LastVal[R * LaneCap + Lane] = Value();
    LastInit[R * LaneCap + Lane] = 0;
  }
  for (size_t R = 0, E = Prog.delays().size(); R != E; ++R) {
    NextTs[R * LaneCap + Lane] = 0;
    NextTsSet[R * LaneCap + Lane] = 0;
  }
}

bool BatchedMonitor::feed(unsigned Lane, StreamId Input, Time Ts, Value V) {
  assert(Lane < NumLanes && Live[Lane] && "feed() targets a live lane");
  if (Failed[Lane])
    return false;
  if (EngineFinished || FinishedL[Lane]) {
    failLane(Lane, "feed() after finish()");
    return false;
  }
  assert(Prog.spec().stream(Input).Kind == StreamKind::Input &&
         "feed() targets must be input streams");
  Queue[Lane].emplace_back(Input, Ts, std::move(V));
  if (!InDirty[Lane]) {
    InDirty[Lane] = 1;
    DirtyLanes.push_back(Lane);
  }
  return true;
}

std::optional<Time> BatchedMonitor::minNextDelay(uint32_t Lane) const {
  std::optional<Time> Min;
  for (size_t I = 0, E = Prog.delays().size(); I != E; ++I) {
    size_t Idx = I * LaneCap + Lane;
    if (NextTsSet[Idx] && (!Min || NextTs[Idx] < *Min))
      Min = NextTs[Idx];
  }
  return Min;
}

/// Consumes buffered records of \p Lane until the lane either drains its
/// queue (returns false) or needs a calculation run (returns true with
/// RunTs[Lane] set). Re-applies Monitor::feed's validation, deferred:
/// check order and messages are identical, including that a rejected
/// record's pending timestamp is never calculated (the lane fails before
/// its flush, exactly as a failed feed() leaves Monitor).
bool BatchedMonitor::prepareLane(uint32_t Lane) {
  auto &Q = Queue[Lane];
  for (;;) {
    if (QueuePos[Lane] == Q.size()) {
      Q.clear();
      QueuePos[Lane] = 0;
      return false;
    }
    PendingRecord &R = Q[QueuePos[Lane]];
    if (R.Ts < 0) {
      failLaneAt(Lane, R.Ts, R.Input, "timestamps must be non-negative");
      return false;
    }
    if (R.Ts < PendingTs[Lane] || (CalcDone[Lane] && R.Ts == PendingTs[Lane])) {
      failLaneAt(Lane, R.Ts, R.Input,
                 "input events must arrive in timestamp order");
      return false;
    }
    SlotId Slot = Prog.valueSlot(R.Input);
    if (R.Ts > PendingTs[Lane]) {
      // Monitor::flushBefore(R.Ts): first the pending timestamp's own
      // calculation, then every armed delay strictly before R.Ts — each
      // is one lockstep sweep; this lane re-enters here afterwards.
      if (!CalcDone[Lane]) {
        RunTs[Lane] = PendingTs[Lane];
        return true;
      }
      if (!Prog.delays().empty()) {
        if (std::optional<Time> Min = minNextDelay(Lane); Min && *Min < R.Ts) {
          RunTs[Lane] = *Min;
          return true;
        }
      }
      PendingTs[Lane] = R.Ts;
      CalcDone[Lane] = 0;
    } else if (Present[idx(Slot, Lane)]) {
      failLaneAt(Lane, R.Ts, R.Input,
                 "two events on one stream at the same timestamp");
      return false;
    }
    setLane(Slot, Lane, std::move(R.V));
    ++NumFed[Lane];
    ++QueuePos[Lane];
  }
}

void BatchedMonitor::sweep() {
  ++NumSweeps;
  const size_t Cap = LaneCap;
  for (uint32_t L : Active)
    ++NumCalcRuns[L];

  // --- Calculation section: Monitor::runCalc with the per-step switch
  // hoisted outside the lane loop. A lane that fails mid-sweep is
  // skipped by every following loop — the per-lane equivalent of
  // runCalc's early return.
  for (const ProgramStep &Step : Prog.steps()) {
    switch (Step.Op) {
    case Opcode::Skip:
      break; // inputs were buffered by prepareLane(); nil never fires
    case Opcode::Const:
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (RunTs[L] == 0)
          setLane(Step.Dst, L, Step.ConstVal);
      }
      break;
    case Opcode::Time: {
      const size_t ARow = static_cast<size_t>(Step.ArgSlot[0]) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (Present[ARow + L])
          setLane(Step.Dst, L, Value::integer(RunTs[L]));
      }
      break;
    }
    case Opcode::Last: {
      const size_t TRow = static_cast<size_t>(Step.ArgSlot[1]) * Cap;
      const size_t LRow = static_cast<size_t>(Step.Aux) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (Present[TRow + L] && LastInit[LRow + L])
          setLane(Step.Dst, L, LastVal[LRow + L]);
      }
      break;
    }
    case Opcode::Delay: {
      const size_t NRow = static_cast<size_t>(Step.Aux) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (NextTsSet[NRow + L] && NextTs[NRow + L] == RunTs[L])
          setLane(Step.Dst, L, Value::unit());
      }
      break;
    }
    case Opcode::LiftAll:
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        const Value *Args[3];
        bool AllPresent = true;
        for (unsigned I = 0; I != Step.NumArgs; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (!Present[AI]) {
            AllPresent = false;
            break;
          }
          Args[I] = &Cur[AI];
        }
        if (!AllPresent)
          continue;
        EvalError Err;
        Value Result = Step.Impl(Args, Step.InPlace, Err);
        if (Err.Failed) {
          failLaneAt(L, RunTs[L], Step.Id, Err.Message);
          continue;
        }
        setLane(Step.Dst, L, std::move(Result));
      }
      break;
    case Opcode::LiftMerge:
      // merge: the first stream's event wins (f_merge, §II).
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        for (unsigned I = 0; I != Step.NumArgs; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (Present[AI]) {
            setLane(Step.Dst, L, Cur[AI]);
            break;
          }
        }
      }
      break;
    case Opcode::LiftFirstRest:
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        size_t FI = idx(Step.ArgSlot[0], L);
        if (!Present[FI])
          continue;
        const Value *Args[3] = {nullptr, nullptr, nullptr};
        bool AnyRest = false;
        Args[0] = &Cur[FI];
        for (unsigned I = 1; I != Step.NumArgs; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (Present[AI]) {
            Args[I] = &Cur[AI];
            AnyRest = true;
          }
        }
        if (!AnyRest)
          continue;
        EvalError Err;
        Value Result = Step.Impl(Args, Step.InPlace, Err);
        if (Err.Failed) {
          failLaneAt(L, RunTs[L], Step.Id, Err.Message);
          continue;
        }
        setLane(Step.Dst, L, std::move(Result));
      }
      break;
    case Opcode::LiftFilter: {
      // filter(a, c): pass a's event iff c is currently true.
      const size_t ARow = static_cast<size_t>(Step.ArgSlot[0]) * Cap;
      const size_t CRow = static_cast<size_t>(Step.ArgSlot[1]) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (!Present[ARow + L] || !Present[CRow + L])
          continue;
        const Value &Cond = Cur[CRow + L];
        if (Cond.kind() != Value::Kind::Bool) {
          failLaneAt(L, RunTs[L], Step.Id, "filter condition is not a Bool");
          continue;
        }
        if (Cond.getBool())
          setLane(Step.Dst, L, Cur[ARow + L]);
      }
      break;
    }
    case Opcode::ConstTick: {
      // Collapsed held constant: fires at timestamp 0 and with every
      // trigger event, always carrying the same scalar.
      const size_t ARow = static_cast<size_t>(Step.ArgSlot[0]) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (RunTs[L] == 0 || Present[ARow + L])
          setLane(Step.Dst, L, Step.ConstVal);
      }
      break;
    }
    case Opcode::FusedLastLift: {
      // Consumer lift with a fused last(v, r) as first argument: fires
      // when r fires, the last slot is initialized, and the remaining
      // arguments are present — byte-identical to the unfused pair.
      const size_t TRow = static_cast<size_t>(Step.ArgSlot[0]) * Cap;
      const size_t LRow = static_cast<size_t>(Step.Aux) * Cap;
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        if (!Present[TRow + L] || !LastInit[LRow + L])
          continue;
        const Value *Args[3];
        Args[0] = &LastVal[LRow + L];
        bool AllPresent = true;
        for (unsigned I = 1; I != Step.NumArgs; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (!Present[AI]) {
            AllPresent = false;
            break;
          }
          Args[I] = &Cur[AI];
        }
        if (!AllPresent)
          continue;
        EvalError Err;
        Value Result = Step.Impl(Args, Step.InPlace, Err);
        if (Err.Failed) {
          failLaneAt(L, RunTs[L], Step.Id, Err.Message);
          continue;
        }
        setLane(Step.Dst, L, std::move(Result));
      }
      break;
    }
    case Opcode::FusedLiftLift:
      // Consumer lift with its single-consumer producer inlined. The
      // producer is evaluated whenever *its* arguments are present —
      // even if the consumer's rest is absent — so destructive updates
      // and error behavior match the unfused program exactly; the
      // temporary is simply discarded when the consumer cannot fire.
      for (uint32_t L : Active) {
        if (AnyFailed && Failed[L])
          continue;
        const Value *Inner[3];
        bool InnerPresent = true;
        for (unsigned I = 0; I != Step.FusedArity; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (!Present[AI]) {
            InnerPresent = false;
            break;
          }
          Inner[I] = &Cur[AI];
        }
        if (!InnerPresent)
          continue;
        EvalError Err;
        Value Tmp = Step.Impl2(Inner, Step.InPlace2, Err);
        if (Err.Failed) {
          failLaneAt(L, RunTs[L], Step.FusedId, Err.Message);
          continue;
        }
        const Value *Args[3];
        Args[0] = &Tmp;
        bool AllPresent = true;
        for (unsigned I = Step.FusedArity; I != Step.NumArgs; ++I) {
          size_t AI = idx(Step.ArgSlot[I], L);
          if (!Present[AI]) {
            AllPresent = false;
            break;
          }
          Args[1 + I - Step.FusedArity] = &Cur[AI];
        }
        if (!AllPresent)
          continue;
        EvalError Err2;
        Value Result = Step.Impl(Args, Step.InPlace, Err2);
        if (Err2.Failed) {
          failLaneAt(L, RunTs[L], Step.Id, Err2.Message);
          continue;
        }
        setLane(Step.Dst, L, std::move(Result));
      }
      break;
    }
  }

  // --- Emit outputs: per lane in definition order, so each lane's
  // output sequence is exactly its Monitor's. Values are deep-copied for
  // the same reason the fleet's output handler deep-copies: the
  // aggregate behind a slot is destructively updated at later
  // timestamps.
  for (uint32_t L : Active) {
    if (AnyFailed && Failed[L])
      continue;
    for (const OutputSlot &Out : Prog.outputs()) {
      size_t I = idx(Out.ValueSlot, L);
      if (Present[I]) {
        ++NumOutputs[L];
        if (CollectOutputs)
          Outputs[L].push_back({RunTs[L], Out.Id, Cur[I].deepCopy()});
      }
    }
  }

  // --- End of calculation: update *_last rows. ---
  for (size_t I = 0, E = Prog.lastSlots().size(); I != E; ++I) {
    const size_t VRow =
        static_cast<size_t>(Prog.lastSlots()[I].ValueSlot) * Cap;
    const size_t LRow = I * Cap;
    for (uint32_t L : Active) {
      if (AnyFailed && Failed[L])
        continue;
      if (Present[VRow + L]) {
        LastVal[LRow + L] = Cur[VRow + L];
        LastInit[LRow + L] = 1;
      }
    }
  }

  // --- Delay scheduling: an event of the reset stream or the delay
  // itself is a reset; with a delays-value event it re-arms the timer,
  // without one it cancels it. A lane failing at delay I skips delays
  // I+1.. via its Failed flag, like runCalc's return.
  for (size_t I = 0, E = Prog.delays().size(); I != E; ++I) {
    const DelaySlot &D = Prog.delays()[I];
    const size_t RRow = static_cast<size_t>(D.ResetSlot) * Cap;
    const size_t VRow = static_cast<size_t>(D.ValueSlot) * Cap;
    const size_t DRow = static_cast<size_t>(D.DelaysSlot) * Cap;
    const size_t NRow = I * Cap;
    for (uint32_t L : Active) {
      if (AnyFailed && Failed[L])
        continue;
      if (!Present[RRow + L] && !Present[VRow + L])
        continue;
      if (Present[DRow + L]) {
        int64_t Amount = Cur[DRow + L].getInt();
        if (Amount <= 0) {
          failLaneAt(L, RunTs[L], D.Id, "delay amounts must be positive");
          continue;
        }
        NextTs[NRow + L] = RunTs[L] + Amount;
        NextTsSet[NRow + L] = 1;
      } else {
        NextTsSet[NRow + L] = 0;
      }
    }
  }

  // --- Reset current-value slots for the lane's next timestamp, and
  // retire pending calculations. ---
  for (uint32_t L : Active) {
    if (AnyFailed && Failed[L])
      continue;
    for (SlotId Slot : Touched[L]) {
      size_t I = idx(Slot, L);
      Present[I] = 0;
      Cur[I] = Value(); // release aggregate handles promptly
    }
    Touched[L].clear();
    if (!CalcDone[L])
      CalcDone[L] = 1; // this sweep was the lane's pending calculation
  }
}

void BatchedMonitor::pump() {
  // Strip-mined: dirty lanes are processed in fixed-size tiles, each
  // tile swept to completion before the next begins. One maximal sweep
  // over every dirty lane would amortize dispatch best, but its per-step
  // row walk touches lanes * sizeof(Value) bytes per slot — past a few
  // hundred lanes the engine rows overflow L2 and every sweep pays DRAM
  // latency. A tile keeps the dispatch amortization (up to TileLanes
  // wide) while the tile's rows stay cache-resident across all of its
  // sweeps.
  for (size_t Pos = 0, E = DirtyLanes.size(); Pos < E;) {
    const size_t End = std::min(Pos + TileLanes, E);
    for (;;) {
      Active.clear();
      for (size_t I = Pos; I != End; ++I) {
        uint32_t L = DirtyLanes[I];
        if (Live[L] && !Failed[L] && !FinishedL[L] && prepareLane(L))
          Active.push_back(L);
      }
      if (Active.empty())
        break;
      sweep();
    }
    // Every lane of the tile drained (or failed/finished: their records
    // are dropped, as a failed Monitor drops subsequent feeds).
    for (size_t I = Pos; I != End; ++I) {
      uint32_t L = DirtyLanes[I];
      InDirty[L] = 0;
      Queue[L].clear();
      QueuePos[L] = 0;
    }
    Pos = End;
  }
  DirtyLanes.clear();
}

void BatchedMonitor::finishAll(std::optional<Time> Horizon) {
  pump();
  // Monitor::finish's drain bound.
  Time Bound = Horizon ? (*Horizon == std::numeric_limits<Time>::max()
                              ? *Horizon
                              : *Horizon + 1)
                       : std::numeric_limits<Time>::max();
  // Tiled like pump(), and legal for the same reason: lanes share no
  // state, so draining them tile by tile reorders only independent work.
  for (uint32_t Base = 0; Base < NumLanes; Base += TileLanes) {
    const uint32_t End =
        static_cast<uint32_t>(std::min<size_t>(Base + TileLanes, NumLanes));
    for (;;) {
      Active.clear();
      for (uint32_t L = Base; L != End; ++L) {
        if (!Live[L] || Failed[L] || FinishedL[L])
          continue;
        if (!CalcDone[L]) {
          RunTs[L] = PendingTs[L];
          Active.push_back(L);
          continue;
        }
        if (std::optional<Time> Min = minNextDelay(L); Min && *Min < Bound) {
          RunTs[L] = *Min;
          Active.push_back(L);
          continue;
        }
        FinishedL[L] = 1;
      }
      if (Active.empty())
        break;
      sweep();
    }
  }
  EngineFinished = true;
}

BatchedMonitor::LaneState BatchedMonitor::extractLane(unsigned Lane) {
  assert(Lane < NumLanes && Live[Lane] && "extractLane() targets a live lane");
  assert(laneIdle(Lane) == (QueuePos[Lane] == Queue[Lane].size()));
  LaneState S;
  S.Session = Session[Lane];
  S.PendingTs = PendingTs[Lane];
  S.CalcDone = CalcDone[Lane] != 0;
  S.Failed = Failed[Lane] != 0;
  S.Error = std::move(ErrMsg[Lane]);
  S.NumFed = NumFed[Lane];
  S.NumOutputs = NumOutputs[Lane];
  S.NumCalcRuns = NumCalcRuns[Lane];
  S.Cur.resize(NumSlots);
  S.Present.assign(NumSlots, 0);
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    size_t I = idx(Slot, Lane);
    S.Cur[Slot] = std::move(Cur[I]);
    Cur[I] = Value();
    S.Present[Slot] = Present[I];
    Present[I] = 0;
  }
  size_t Lasts = Prog.lastSlots().size();
  S.LastVal.resize(Lasts);
  S.LastInit.assign(Lasts, 0);
  for (size_t R = 0; R != Lasts; ++R) {
    size_t I = R * LaneCap + Lane;
    S.LastVal[R] = std::move(LastVal[I]);
    LastVal[I] = Value();
    S.LastInit[R] = LastInit[I];
    LastInit[I] = 0;
  }
  size_t Delays = Prog.delays().size();
  S.NextTs.assign(Delays, 0);
  S.NextTsSet.assign(Delays, 0);
  for (size_t R = 0; R != Delays; ++R) {
    size_t I = R * LaneCap + Lane;
    S.NextTs[R] = NextTs[I];
    NextTs[I] = 0;
    S.NextTsSet[R] = NextTsSet[I];
    NextTsSet[I] = 0;
  }
  S.Queue.assign(std::make_move_iterator(Queue[Lane].begin() + QueuePos[Lane]),
                 std::make_move_iterator(Queue[Lane].end()));
  S.Outputs = std::move(Outputs[Lane]);
  Queue[Lane].clear();
  QueuePos[Lane] = 0;
  Touched[Lane].clear();
  Outputs[Lane].clear();
  Live[Lane] = 0;
  --NumLive;
  FreeLanes.push_back(Lane);
  return S;
}

BatchedMonitor::LaneState BatchedMonitor::snapshotLane(unsigned Lane) const {
  assert(Lane < NumLanes && Live[Lane] &&
         "snapshotLane() targets a live lane");
  LaneState S;
  S.Session = Session[Lane];
  S.PendingTs = PendingTs[Lane];
  S.CalcDone = CalcDone[Lane] != 0;
  S.Failed = Failed[Lane] != 0;
  S.Error = ErrMsg[Lane];
  S.NumFed = NumFed[Lane];
  S.NumOutputs = NumOutputs[Lane];
  S.NumCalcRuns = NumCalcRuns[Lane];
  S.Cur.resize(NumSlots);
  S.Present.assign(NumSlots, 0);
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    size_t I = idx(Slot, Lane);
    S.Cur[Slot] = Cur[I]; // O(1) per slot: handles share structure
    S.Present[Slot] = Present[I];
  }
  size_t Lasts = Prog.lastSlots().size();
  S.LastVal.resize(Lasts);
  S.LastInit.assign(Lasts, 0);
  for (size_t R = 0; R != Lasts; ++R) {
    size_t I = R * LaneCap + Lane;
    S.LastVal[R] = LastVal[I];
    S.LastInit[R] = LastInit[I];
  }
  size_t Delays = Prog.delays().size();
  S.NextTs.assign(Delays, 0);
  S.NextTsSet.assign(Delays, 0);
  for (size_t R = 0; R != Delays; ++R) {
    size_t I = R * LaneCap + Lane;
    S.NextTs[R] = NextTs[I];
    S.NextTsSet[R] = NextTsSet[I];
  }
  S.Queue.assign(Queue[Lane].begin() + QueuePos[Lane], Queue[Lane].end());
  S.Outputs = Outputs[Lane];
  return S;
}

void BatchedMonitor::visitValues(
    const std::function<void(const Value &)> &Fn) const {
  for (uint32_t Lane = 0; Lane != NumLanes; ++Lane) {
    if (!Live[Lane])
      continue;
    for (uint32_t Slot = 0; Slot != NumSlots; ++Slot)
      Fn(Cur[idx(Slot, Lane)]);
    for (size_t R = 0, E = Prog.lastSlots().size(); R != E; ++R)
      Fn(LastVal[R * LaneCap + Lane]);
    for (size_t I = QueuePos[Lane], E = Queue[Lane].size(); I != E; ++I)
      Fn(Queue[Lane][I].V);
    for (const OutputEvent &E : Outputs[Lane])
      Fn(E.V);
  }
}

unsigned BatchedMonitor::insertLane(LaneState S) {
  uint32_t L = allocLane(S.Session);
  PendingTs[L] = S.PendingTs;
  CalcDone[L] = S.CalcDone;
  Failed[L] = S.Failed;
  if (S.Failed)
    AnyFailed = true;
  ErrMsg[L] = std::move(S.Error);
  NumFed[L] = S.NumFed;
  NumOutputs[L] = S.NumOutputs;
  NumCalcRuns[L] = S.NumCalcRuns;
  assert(S.Cur.size() == NumSlots && "lane state is for another program");
  for (uint32_t Slot = 0; Slot != NumSlots; ++Slot) {
    size_t I = idx(Slot, L);
    Cur[I] = std::move(S.Cur[Slot]);
    Present[I] = S.Present[Slot];
    // Rebuild the touched list from presence: reset order is
    // unobservable, membership is what matters.
    if (Present[I])
      Touched[L].push_back(Slot);
  }
  for (size_t R = 0, E = Prog.lastSlots().size(); R != E; ++R) {
    size_t I = R * LaneCap + L;
    LastVal[I] = std::move(S.LastVal[R]);
    LastInit[I] = S.LastInit[R];
  }
  for (size_t R = 0, E = Prog.delays().size(); R != E; ++R) {
    size_t I = R * LaneCap + L;
    NextTs[I] = S.NextTs[R];
    NextTsSet[I] = S.NextTsSet[R];
  }
  Queue[L] = std::move(S.Queue);
  QueuePos[L] = 0;
  if (!Queue[L].empty() && !InDirty[L]) {
    InDirty[L] = 1;
    DirtyLanes.push_back(L);
  }
  Outputs[L] = std::move(S.Outputs);
  return L;
}
