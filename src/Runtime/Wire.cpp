//===- Runtime/Wire.cpp -----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Wire.h"

#include "tessla/Program/BinaryCodec.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Support/Format.h"

#include <cstring>

using namespace tessla;
using bc::ByteReader;
using bc::ByteWriter;

const char *tessla::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Hello:
    return "Hello";
  case FrameType::HelloAck:
    return "HelloAck";
  case FrameType::Batch:
    return "Batch";
  case FrameType::Busy:
    return "Busy";
  case FrameType::Snapshot:
    return "Snapshot";
  case FrameType::SnapshotAck:
    return "SnapshotAck";
  case FrameType::Restore:
    return "Restore";
  case FrameType::RestoreAck:
    return "RestoreAck";
  case FrameType::Finish:
    return "Finish";
  case FrameType::Outputs:
    return "Outputs";
  case FrameType::FinishAck:
    return "FinishAck";
  case FrameType::Stats:
    return "Stats";
  case FrameType::StatsAck:
    return "StatsAck";
  case FrameType::Error:
    return "Error";
  case FrameType::Shutdown:
    return "Shutdown";
  case FrameType::ShutdownAck:
    return "ShutdownAck";
  case FrameType::ForkSession:
    return "ForkSession";
  case FrameType::ForkAck:
    return "ForkAck";
  }
  return "?";
}

namespace {

bool validFrameType(uint8_t T) {
  return T >= static_cast<uint8_t>(FrameType::Hello) &&
         T <= static_cast<uint8_t>(FrameType::ForkAck);
}

/// Wraps a hostile payload decode: a DecodeContext funneling its
/// diagnostics into one error string.
struct PayloadCtx {
  DiagnosticEngine Diags;
  bc::DecodeContext Ctx{Diags, "wire"};
  std::string &ErrorOut;

  explicit PayloadCtx(std::string &Err) : ErrorOut(Err) {}

  bool finish(const ByteReader &R, const char *What) {
    if (!Ctx.Ok || R.failed()) {
      ErrorOut = Diags.hasErrors() ? Diags.str()
                                   : formatString("wire: truncated %s "
                                                  "payload",
                                                  What);
      return false;
    }
    if (!R.atEnd()) {
      ErrorOut = formatString("wire: trailing bytes in %s payload", What);
      return false;
    }
    return true;
  }
};

} // namespace

std::vector<uint8_t> tessla::encodeFrame(FrameType Type,
                                         const uint8_t *Payload,
                                         size_t Size) {
  ByteWriter W;
  for (uint8_t M : WireMagic)
    W.u8(M);
  W.u8(static_cast<uint8_t>(Type));
  W.u32(static_cast<uint32_t>(Size));
  W.u64(tpbChecksum(Payload, Size));
  if (Size)
    W.raw(Payload, Size);
  return W.take();
}

std::vector<uint8_t> tessla::encodeFrame(FrameType Type,
                                         const std::vector<uint8_t> &P) {
  return encodeFrame(Type, P.data(), P.size());
}

void FrameDecoder::append(const uint8_t *Data, size_t Size) {
  if (Failed)
    return;
  // Compact the consumed prefix before growing the buffer.
  if (Pos && (Pos == Buf.size() || Pos >= (64u << 10))) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  Buf.insert(Buf.end(), Data, Data + Size);
}

std::optional<WireFrame> FrameDecoder::next() {
  if (Failed)
    return std::nullopt;
  if (Buf.size() - Pos < WireHeaderSize)
    return std::nullopt;
  const uint8_t *H = Buf.data() + Pos;
  if (std::memcmp(H, WireMagic, sizeof(WireMagic)) != 0) {
    Failed = true;
    Err = "wire: bad frame magic";
    return std::nullopt;
  }
  uint8_t Type = H[4];
  if (!validFrameType(Type)) {
    Failed = true;
    Err = formatString("wire: unknown frame type %u", Type);
    return std::nullopt;
  }
  ByteReader R(H + 5, 12);
  uint32_t Size = R.u32();
  uint64_t Checksum = R.u64();
  if (Size > WireMaxPayload) {
    Failed = true;
    Err = formatString("wire: frame payload of %u bytes exceeds the "
                       "%u-byte cap",
                       Size, WireMaxPayload);
    return std::nullopt;
  }
  if (Buf.size() - Pos - WireHeaderSize < Size)
    return std::nullopt; // need more bytes
  const uint8_t *Payload = H + WireHeaderSize;
  if (tpbChecksum(Payload, Size) != Checksum) {
    Failed = true;
    Err = "wire: frame payload checksum mismatch";
    return std::nullopt;
  }
  WireFrame F;
  F.Type = static_cast<FrameType>(Type);
  F.Payload.assign(Payload, Payload + Size);
  Pos += WireHeaderSize + Size;
  return F;
}

// --- Payload codecs -------------------------------------------------------

std::vector<uint8_t> tessla::encodeEventBatch(const EventBatch &B) {
  ByteWriter W;
  bc::ValueEncodeShare Share; // one context per frame: aggregates shared
                              // between records encode once
  W.u32(static_cast<uint32_t>(B.Records.size()));
  for (const EventRecord &R : B.Records) {
    W.u64(R.Session);
    W.u32(R.Input);
    W.i64(R.Ts);
    bc::writeValue(W, R.V, &Share);
  }
  return W.take();
}

std::optional<EventBatch>
tessla::decodeEventBatch(const uint8_t *Data, size_t Size,
                         std::string &ErrorOut) {
  PayloadCtx P(ErrorOut);
  ByteReader R(Data, Size);
  uint32_t N = R.u32();
  if (R.failed() || N > R.remaining()) {
    ErrorOut = "wire: record count exceeds the Batch payload";
    return std::nullopt;
  }
  EventBatch B;
  B.Records.reserve(N);
  bc::ValueDecodeShare Share;
  for (uint32_t I = 0; I != N && P.Ctx.Ok && !R.failed(); ++I) {
    EventRecord Rec;
    Rec.Session = R.u64();
    Rec.Input = R.u32();
    Rec.Ts = R.i64();
    Rec.V = bc::readValue(R, P.Ctx, 0, &Share);
    B.Records.push_back(std::move(Rec));
  }
  if (!P.finish(R, "Batch"))
    return std::nullopt;
  return B;
}

std::vector<uint8_t>
tessla::encodeOutputs(const std::vector<WireOutputRecord> &Events) {
  ByteWriter W;
  bc::ValueEncodeShare Share; // outputs of forked sessions share state
  W.u32(static_cast<uint32_t>(Events.size()));
  for (const WireOutputRecord &E : Events) {
    W.u64(E.Session);
    W.i64(E.Ts);
    W.u32(E.Stream);
    bc::writeValue(W, E.V, &Share);
  }
  return W.take();
}

std::optional<std::vector<WireOutputRecord>>
tessla::decodeOutputs(const uint8_t *Data, size_t Size,
                      std::string &ErrorOut) {
  PayloadCtx P(ErrorOut);
  ByteReader R(Data, Size);
  uint32_t N = R.u32();
  if (R.failed() || N > R.remaining()) {
    ErrorOut = "wire: record count exceeds the Outputs payload";
    return std::nullopt;
  }
  std::vector<WireOutputRecord> Events;
  Events.reserve(N);
  bc::ValueDecodeShare Share;
  for (uint32_t I = 0; I != N && P.Ctx.Ok && !R.failed(); ++I) {
    WireOutputRecord E;
    E.Session = R.u64();
    E.Ts = R.i64();
    E.Stream = R.u32();
    E.V = bc::readValue(R, P.Ctx, 0, &Share);
    Events.push_back(std::move(E));
  }
  if (!P.finish(R, "Outputs"))
    return std::nullopt;
  return Events;
}

std::vector<uint8_t> tessla::encodeHello() {
  ByteWriter W;
  W.u32(WireFormatVersion);
  return W.take();
}

bool tessla::decodeHello(const uint8_t *Data, size_t Size,
                         uint32_t &VersionOut, std::string &ErrorOut) {
  ByteReader R(Data, Size);
  VersionOut = R.u32();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed Hello payload";
    return false;
  }
  return true;
}

std::vector<uint8_t> tessla::encodeHelloAck(const WireHelloAck &A) {
  ByteWriter W;
  W.u32(A.Version);
  W.u64(A.ProgramChecksum);
  W.u32(A.Shards);
  return W.take();
}

std::optional<WireHelloAck>
tessla::decodeHelloAck(const uint8_t *Data, size_t Size,
                       std::string &ErrorOut) {
  ByteReader R(Data, Size);
  WireHelloAck A;
  A.Version = R.u32();
  A.ProgramChecksum = R.u64();
  A.Shards = R.u32();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed HelloAck payload";
    return std::nullopt;
  }
  return A;
}

std::vector<uint8_t> tessla::encodeFinishAck(const WireFinishAck &A) {
  ByteWriter W;
  W.u64(A.FailedSessions);
  W.u64(A.TotalOutputs);
  return W.take();
}

std::optional<WireFinishAck>
tessla::decodeFinishAck(const uint8_t *Data, size_t Size,
                        std::string &ErrorOut) {
  ByteReader R(Data, Size);
  WireFinishAck A;
  A.FailedSessions = R.u64();
  A.TotalOutputs = R.u64();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed FinishAck payload";
    return std::nullopt;
  }
  return A;
}

std::vector<uint8_t> tessla::encodeU64(uint64_t V) {
  ByteWriter W;
  W.u64(V);
  return W.take();
}

std::optional<uint64_t> tessla::decodeU64(const uint8_t *Data, size_t Size,
                                          std::string &ErrorOut) {
  ByteReader R(Data, Size);
  uint64_t V = R.u64();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed u64 payload";
    return std::nullopt;
  }
  return V;
}

std::vector<uint8_t> tessla::encodeForkSession(const WireForkSession &F) {
  ByteWriter W;
  W.u64(F.Src);
  W.u64(F.Dst);
  return W.take();
}

std::optional<WireForkSession>
tessla::decodeForkSession(const uint8_t *Data, size_t Size,
                          std::string &ErrorOut) {
  ByteReader R(Data, Size);
  WireForkSession F;
  F.Src = R.u64();
  F.Dst = R.u64();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed ForkSession payload";
    return std::nullopt;
  }
  return F;
}

std::vector<uint8_t> tessla::encodeString(const std::string &S) {
  ByteWriter W;
  W.str(S);
  return W.take();
}

std::optional<std::string> tessla::decodeString(const uint8_t *Data,
                                                size_t Size,
                                                std::string &ErrorOut) {
  ByteReader R(Data, Size);
  std::string S = R.str();
  if (R.failed() || !R.atEnd()) {
    ErrorOut = "wire: malformed string payload";
    return std::nullopt;
  }
  return S;
}
