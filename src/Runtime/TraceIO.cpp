//===- Runtime/TraceIO.cpp --------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/TraceIO.h"

#include "tessla/Runtime/Containers.h"
#include "tessla/Support/Format.h"

using namespace tessla;

static std::string_view trim(std::string_view S) {
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.front())))
    S.remove_prefix(1);
  while (!S.empty() && std::isspace(static_cast<unsigned char>(S.back())))
    S.remove_suffix(1);
  return S;
}

std::optional<Value> tessla::parseValueLiteral(std::string_view Text) {
  Text = trim(Text);
  if (Text.empty())
    return std::nullopt;
  if (Text == "()")
    return Value::unit();
  if (Text == "true")
    return Value::boolean(true);
  if (Text == "false")
    return Value::boolean(false);
  if (Text.front() == '"') {
    if (Text.size() < 2 || Text.back() != '"')
      return std::nullopt;
    std::string_view Body = Text.substr(1, Text.size() - 2);
    std::string Out;
    for (size_t I = 0; I != Body.size(); ++I) {
      if (Body[I] != '\\') {
        Out += Body[I];
        continue;
      }
      if (++I == Body.size())
        return std::nullopt;
      switch (Body[I]) {
      case 'n': Out += '\n'; break;
      case 't': Out += '\t'; break;
      case 'r': Out += '\r'; break;
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      default:
        return std::nullopt;
      }
    }
    return Value::string(std::move(Out));
  }
  int64_t IntVal;
  if (parseInt64(Text, IntVal))
    return Value::integer(IntVal);
  double FloatVal;
  if (parseDouble(Text, FloatVal))
    return Value::floating(FloatVal);
  return std::nullopt;
}

namespace {

/// Recursive-descent parser over canonical Value::str() renderings.
/// Scalars are delegated to parseValueLiteral; aggregates recurse.
class ValueTextParser {
public:
  explicit ValueTextParser(std::string_view S) : S(S) {}

  std::optional<Value> parseWhole() {
    auto V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != S.size())
      return std::nullopt;
    return V;
  }

private:
  std::string_view S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool consumeChar(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool consumeArrow() {
    skipWs();
    if (Pos + 1 < S.size() && S[Pos] == '-' && S[Pos + 1] == '>') {
      Pos += 2;
      return true;
    }
    return false;
  }

  std::optional<Value> parseValue() {
    skipWs();
    if (Pos >= S.size())
      return std::nullopt;
    char C = S[Pos];
    if (C == '{')
      return parseSetOrMap();
    if (C == '<')
      return parseQueue();
    if (C == '"')
      return parseString();
    return parseScalar();
  }

  std::optional<Value> parseString() {
    size_t Start = Pos;
    ++Pos; // opening quote
    while (Pos < S.size()) {
      if (S[Pos] == '\\') {
        Pos += 2;
        continue;
      }
      if (S[Pos] == '"') {
        ++Pos;
        return parseValueLiteral(S.substr(Start, Pos - Start));
      }
      ++Pos;
    }
    return std::nullopt;
  }

  /// Non-string scalar: extends to the next structural delimiter. A '-'
  /// only terminates as part of a map's "->" — numbers like "1e-5" run
  /// through it.
  std::optional<Value> parseScalar() {
    size_t Start = Pos;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == ',' || C == '}' || C == '>')
        break;
      if (C == '-' && Pos + 1 < S.size() && S[Pos + 1] == '>')
        break;
      ++Pos;
    }
    if (Pos == Start)
      return std::nullopt;
    return parseValueLiteral(S.substr(Start, Pos - Start));
  }

  std::optional<Value> parseSetOrMap() {
    ++Pos; // '{'
    if (consumeChar('}'))
      return Value::emptySet(); // "{}": empty set and map render
                                // identically
    auto First = parseValue();
    if (!First)
      return std::nullopt;
    if (consumeArrow())
      return parseMapRest(std::move(*First));
    SetCow Set = Value::emptySet().setCow(true);
    Set.add(std::move(*First));
    while (!consumeChar('}')) {
      if (!consumeChar(','))
        return std::nullopt;
      auto Elem = parseValue();
      if (!Elem)
        return std::nullopt;
      Set.add(std::move(*Elem));
    }
    return std::move(Set).finish();
  }

  std::optional<Value> parseMapRest(Value FirstKey) {
    MapCow Map = Value::emptyMap().mapCow(true);
    auto FirstVal = parseValue();
    if (!FirstVal)
      return std::nullopt;
    Map.put(std::move(FirstKey), std::move(*FirstVal));
    while (!consumeChar('}')) {
      if (!consumeChar(','))
        return std::nullopt;
      auto Key = parseValue();
      if (!Key || !consumeArrow())
        return std::nullopt;
      auto Val = parseValue();
      if (!Val)
        return std::nullopt;
      Map.put(std::move(*Key), std::move(*Val));
    }
    return std::move(Map).finish();
  }

  std::optional<Value> parseQueue() {
    ++Pos; // '<'
    QueueCow Queue = Value::emptyQueue().queueCow(true);
    if (consumeChar('>'))
      return std::move(Queue).finish();
    while (true) {
      auto Elem = parseValue();
      if (!Elem)
        return std::nullopt;
      Queue.enqueue(std::move(*Elem));
      if (consumeChar('>'))
        return std::move(Queue).finish();
      if (!consumeChar(','))
        return std::nullopt;
    }
  }
};

} // namespace

std::optional<Value> tessla::parseValueText(std::string_view Text) {
  return ValueTextParser(trim(Text)).parseWhole();
}

std::optional<std::vector<TraceEvent>>
tessla::parseTrace(std::string_view Text, const Spec &S,
                   DiagnosticEngine &Diags) {
  std::vector<TraceEvent> Events;
  unsigned Before = Diags.errorCount();
  uint32_t LineNo = 0;

  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string_view::npos)
      End = Text.size();
    std::string_view Line = trim(Text.substr(Pos, End - Pos));
    Pos = End + 1;
    ++LineNo;
    if (Line.empty() || Line.front() == '#' || Line.substr(0, 2) == "--")
      continue;
    SourceLocation Loc(LineNo, 1);

    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos) {
      Diags.error(Loc, "expected 'ts: name = value'");
      continue;
    }
    int64_t Ts;
    if (!parseInt64(trim(Line.substr(0, Colon)), Ts) || Ts < 0) {
      Diags.error(Loc, "invalid timestamp");
      continue;
    }
    std::string_view Rest = Line.substr(Colon + 1);
    size_t Equal = Rest.find('=');
    if (Equal == std::string_view::npos) {
      Diags.error(Loc, "expected '= value'");
      continue;
    }
    std::string_view Name = trim(Rest.substr(0, Equal));
    auto Id = S.lookup(Name);
    if (!Id || S.stream(*Id).Kind != StreamKind::Input) {
      Diags.error(Loc, formatString("'%.*s' is not an input stream",
                                    static_cast<int>(Name.size()),
                                    Name.data()));
      continue;
    }
    auto V = parseValueLiteral(Rest.substr(Equal + 1));
    if (!V) {
      Diags.error(Loc, "invalid value literal");
      continue;
    }
    Events.emplace_back(*Id, Ts, std::move(*V));
  }
  if (Diags.errorCount() != Before)
    return std::nullopt;
  return Events;
}

std::string tessla::formatEvent(const Spec &S, const OutputEvent &E) {
  return formatString("%lld: %s = %s", static_cast<long long>(E.Ts),
                      S.stream(E.Id).Name.c_str(), E.V.str().c_str());
}

std::string tessla::formatOutputs(const Spec &S,
                                  const std::vector<OutputEvent> &Events) {
  std::string Out;
  for (const OutputEvent &E : Events) {
    Out += formatEvent(S, E);
    Out += '\n';
  }
  return Out;
}

EventBatch tessla::toBatch(const std::vector<TraceEvent> &Events,
                           SessionId Session) {
  EventBatch B;
  B.Records.reserve(Events.size());
  for (const auto &[Id, Ts, V] : Events)
    B.Records.push_back({Session, Id, Ts, V});
  return B;
}

bool tessla::feedBatch(Monitor &M, const EventBatch &B) {
  for (const EventRecord &R : B.Records)
    if (!M.feed(R.Input, R.Ts, R.V))
      return false;
  return true;
}

std::vector<OutputEvent>
tessla::runMonitor(const Program &Prog, const EventBatch &Batch,
                   std::optional<Time> Horizon, std::string *ErrorOut) {
  Monitor M(Prog);
  std::vector<OutputEvent> Out;
  M.setOutputHandler([&Out](Time Ts, StreamId Id, const Value &V) {
    // Borrowed handler value; recording requires a deep copy.
    Out.push_back({Ts, Id, V.deepCopy()});
  });
  feedBatch(M, Batch);
  M.finish(Horizon);
  if (ErrorOut)
    *ErrorOut = M.failed() ? M.errorMessage() : "";
  return Out;
}
