//===- Runtime/ExecutionEngine.cpp ------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/ExecutionEngine.h"

#include "tessla/Runtime/BatchedMonitor.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace tessla;

EngineLaneState ShardEngine::extractLane(unsigned) {
  std::fprintf(stderr,
               "tessla: extractLane() on a '%s' engine, which does not "
               "support migration\n",
               name());
  std::abort();
}

unsigned ShardEngine::insertLane(EngineLaneState) {
  std::fprintf(stderr,
               "tessla: insertLane() on a '%s' engine, which does not "
               "support migration\n",
               name());
  std::abort();
}

EngineLaneState ShardEngine::snapshotLane(unsigned) const {
  std::fprintf(stderr,
               "tessla: snapshotLane() on a '%s' engine, which does not "
               "support migration\n",
               name());
  std::abort();
}

namespace {

/// The reference engine: one interpreter Monitor per lane. Eager —
/// records are validated and applied at feed() time, so pump() is a
/// no-op and lanes are always idle.
class PerSessionShardEngine final : public ShardEngine {
public:
  PerSessionShardEngine(const Program &Prog, bool CollectOutputs)
      : Prog(Prog), CollectOutputs(CollectOutputs) {}

  unsigned addLane(SessionId Session) override {
    unsigned L = allocLane(Session);
    Lanes[L].M = std::make_unique<Monitor>(Prog);
    attachHandler(L);
    return L;
  }

  bool feed(unsigned Lane, StreamId Input, Time Ts, Value V) override {
    return Lanes[Lane].M->feed(Input, Ts, std::move(V));
  }

  void pump() override {}

  void finishAll(std::optional<Time> Horizon) override {
    for (LaneSlot &Slot : Lanes)
      if (Slot.Live)
        Slot.M->finish(Horizon);
  }

  bool supportsMigration() const override { return true; }

  EngineLaneState extractLane(unsigned Lane) override {
    LaneSlot &Slot = Lanes[Lane];
    assert(Slot.Live && "extractLane() targets a live lane");
    EngineLaneState S;
    Slot.M->extractState(S);
    S.Session = Slot.Session;
    S.Outputs = std::move(*Slot.Outputs);
    Slot.M.reset();
    Slot.Outputs.reset();
    Slot.Live = false;
    --NumLive;
    FreeLanes.push_back(Lane);
    return S;
  }

  EngineLaneState snapshotLane(unsigned Lane) const override {
    const LaneSlot &Slot = Lanes[Lane];
    assert(Slot.Live && "snapshotLane() targets a live lane");
    EngineLaneState S;
    Slot.M->snapshotState(S);
    S.Session = Slot.Session;
    S.Outputs = *Slot.Outputs; // Value handles shared, not deep-copied
    return S;
  }

  void visitValues(
      const std::function<void(const Value &)> &Fn) const override {
    for (const LaneSlot &Slot : Lanes) {
      if (!Slot.Live)
        continue;
      Slot.M->visitValues(Fn);
      for (const OutputEvent &E : *Slot.Outputs)
        Fn(E.V);
    }
  }

  unsigned insertLane(EngineLaneState S) override {
    unsigned L = allocLane(S.Session);
    LaneSlot &Slot = Lanes[L];
    Slot.M = std::make_unique<Monitor>(Prog);
    Slot.M->restoreState(S);
    *Slot.Outputs = std::move(S.Outputs);
    attachHandler(L);
    // A buffering engine may hand over unconsumed records; this engine
    // is eager, so apply them now — feed() runs the same validation the
    // donor had merely deferred.
    for (EnginePendingRecord &R : S.Queue)
      if (!Slot.M->feed(R.Input, R.Ts, std::move(R.V)))
        break;
    return L;
  }

  SessionId laneSession(unsigned Lane) const override {
    return Lanes[Lane].Session;
  }
  bool laneFailed(unsigned Lane) const override {
    return Lanes[Lane].M->failed();
  }
  const std::string &laneError(unsigned Lane) const override {
    return Lanes[Lane].M->errorMessage();
  }
  uint64_t laneInputEvents(unsigned Lane) const override {
    return Lanes[Lane].M->inputEvents();
  }
  uint64_t laneOutputEvents(unsigned Lane) const override {
    return Lanes[Lane].M->outputEvents();
  }
  bool laneIdle(unsigned) const override { return true; }

  std::vector<OutputEvent> takeLaneOutputs(unsigned Lane) override {
    return std::move(*Lanes[Lane].Outputs);
  }

  size_t laneCount() const override { return NumLive; }
  const char *name() const override { return "per-session"; }

private:
  struct LaneSlot {
    std::unique_ptr<Monitor> M;
    // Stable address: the output handler captures the vector across
    // Lanes reallocation.
    std::unique_ptr<std::vector<OutputEvent>> Outputs;
    SessionId Session = 0;
    bool Live = false;
  };

  const Program &Prog;
  const bool CollectOutputs;
  std::vector<LaneSlot> Lanes;
  std::vector<unsigned> FreeLanes;
  size_t NumLive = 0;

  unsigned allocLane(SessionId Session) {
    unsigned L;
    if (!FreeLanes.empty()) {
      L = FreeLanes.back();
      FreeLanes.pop_back();
    } else {
      L = static_cast<unsigned>(Lanes.size());
      Lanes.emplace_back();
    }
    Lanes[L].Session = Session;
    Lanes[L].Live = true;
    Lanes[L].Outputs = std::make_unique<std::vector<OutputEvent>>();
    ++NumLive;
    return L;
  }

  void attachHandler(unsigned Lane) {
    if (!CollectOutputs)
      return; // the monitor still counts outputs without a handler
    std::vector<OutputEvent> *Out = Lanes[Lane].Outputs.get();
    Lanes[Lane].M->setOutputHandler(
        [Out](Time Ts, StreamId Id, const Value &V) {
          // Borrowed handler value; recording requires a deep copy.
          Out->push_back({Ts, Id, V.deepCopy()});
        });
  }
};

} // namespace

std::unique_ptr<ShardEngine> tessla::makePerSessionEngine(const Program &Prog,
                                                          bool CollectOutputs) {
  return std::make_unique<PerSessionShardEngine>(Prog, CollectOutputs);
}

std::unique_ptr<ShardEngine> tessla::makeBatchedEngine(const Program &Prog,
                                                       bool CollectOutputs) {
  return std::make_unique<BatchedMonitor>(Prog, CollectOutputs);
}

std::vector<OutputEvent> tessla::runEngineSingle(ShardEngine &Engine,
                                                 const EventBatch &Batch,
                                                 std::optional<Time> Horizon,
                                                 std::string *ErrorOut) {
  unsigned Lane = Engine.addLane(Batch.Records.empty()
                                     ? SessionId(0)
                                     : Batch.Records.front().Session);
  for (const EventRecord &R : Batch.Records)
    if (!Engine.feed(Lane, R.Input, R.Ts, R.V))
      break;
  Engine.finishAll(Horizon);
  if (ErrorOut)
    *ErrorOut = Engine.laneFailed(Lane) ? Engine.laneError(Lane) : "";
  return Engine.takeLaneOutputs(Lane);
}
