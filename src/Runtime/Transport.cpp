//===- Runtime/Transport.cpp ------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/Runtime/Transport.h"

#include "tessla/Support/Format.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace tessla;

namespace {

/// A connected POSIX stream fd. shutdown() before close() so a peer
/// blocked in recv() wakes with end-of-stream instead of hanging.
class FdTransport : public Transport {
public:
  explicit FdTransport(int Fd) : Fd(Fd) {}
  ~FdTransport() override { close(); }

  bool send(const uint8_t *Data, size_t Size) override {
    while (Size) {
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Data += N;
      Size -= static_cast<size_t>(N);
    }
    return true;
  }

  ptrdiff_t recv(uint8_t *Data, size_t Size) override {
    for (;;) {
      ssize_t N = ::recv(Fd, Data, Size, 0);
      if (N < 0 && errno == EINTR)
        continue;
      return N;
    }
  }

  ptrdiff_t tryRecv(uint8_t *Data, size_t Size) override {
    for (;;) {
      ssize_t N = ::recv(Fd, Data, Size, MSG_DONTWAIT);
      if (N > 0)
        return N;
      if (N == 0)
        return -1; // orderly close: nothing more will ever arrive
      if (errno == EINTR)
        continue;
      return errno == EAGAIN || errno == EWOULDBLOCK ? 0 : -1;
    }
  }

  void close() override {
    int Expected = Fd.load();
    if (Expected < 0 || !Fd.compare_exchange_strong(Expected, -1))
      return;
    ::shutdown(Expected, SHUT_RDWR);
    ::close(Expected);
  }

  void interrupt() override {
    int F = Fd.load();
    if (F >= 0)
      ::shutdown(F, SHUT_RDWR);
  }

private:
  // send/recv/close may race from different threads; the CAS makes
  // close-once safe and keeps the fd from double-closing.
  std::atomic<int> Fd;
};

class UnixListener : public Listener {
public:
  UnixListener(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}
  ~UnixListener() override { close(); }

  std::unique_ptr<Transport> accept() override {
    for (;;) {
      int C = ::accept(Fd.load(), nullptr, nullptr);
      if (C >= 0)
        return std::make_unique<FdTransport>(C);
      if (errno == EINTR)
        continue;
      return nullptr;
    }
  }

  void close() override {
    int Expected = Fd.load();
    if (Expected < 0 || !Fd.compare_exchange_strong(Expected, -1))
      return;
    // Unblocks a pending accept() with ECONNABORTED/EBADF.
    ::shutdown(Expected, SHUT_RDWR);
    ::close(Expected);
    ::unlink(Path.c_str());
  }

private:
  std::atomic<int> Fd;
  std::string Path;
};

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr,
                  std::string *ErrorOut) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (ErrorOut)
      *ErrorOut = formatString("socket path too long (%zu bytes, max %zu): %s",
                               Path.size(), sizeof(Addr.sun_path) - 1,
                               Path.c_str());
    return false;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  return true;
}

void setError(std::string *ErrorOut, const char *What,
              const std::string &Path) {
  if (ErrorOut)
    *ErrorOut =
        formatString("%s %s: %s", What, Path.c_str(), std::strerror(errno));
}

} // namespace

std::unique_ptr<Transport> tessla::makeFdTransport(int Fd) {
  return std::make_unique<FdTransport>(Fd);
}

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
tessla::makePipeTransportPair() {
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
    return {nullptr, nullptr};
  return {std::make_unique<FdTransport>(Fds[0]),
          std::make_unique<FdTransport>(Fds[1])};
}

std::unique_ptr<Listener>
tessla::listenUnixSocket(const std::string &Path, std::string *ErrorOut) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, ErrorOut))
    return nullptr;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(ErrorOut, "cannot create socket for", Path);
    return nullptr;
  }
  ::unlink(Path.c_str()); // a stale socket file from a dead server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setError(ErrorOut, "cannot bind", Path);
    ::close(Fd);
    return nullptr;
  }
  if (::listen(Fd, 64) != 0) {
    setError(ErrorOut, "cannot listen on", Path);
    ::close(Fd);
    ::unlink(Path.c_str());
    return nullptr;
  }
  return std::make_unique<UnixListener>(Fd, Path);
}

std::unique_ptr<Transport>
tessla::connectUnixSocket(const std::string &Path, std::string *ErrorOut) {
  sockaddr_un Addr;
  if (!fillSockaddr(Path, Addr, ErrorOut))
    return nullptr;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    setError(ErrorOut, "cannot create socket for", Path);
    return nullptr;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    setError(ErrorOut, "cannot connect to", Path);
    ::close(Fd);
    return nullptr;
  }
  return std::make_unique<FdTransport>(Fd);
}

bool tessla::sendFrame(Transport &T, FrameType Type,
                       const std::vector<uint8_t> &Payload) {
  return T.send(encodeFrame(Type, Payload));
}

bool tessla::sendFrame(Transport &T, FrameType Type) {
  return T.send(encodeFrame(Type, nullptr, 0));
}

std::optional<WireFrame> tessla::recvFrame(Transport &T, FrameDecoder &Dec,
                                           std::string &ErrorOut) {
  for (;;) {
    if (auto F = Dec.next())
      return F;
    if (Dec.failed()) {
      ErrorOut = Dec.error();
      return std::nullopt;
    }
    uint8_t Chunk[16 << 10];
    ptrdiff_t N = T.recv(Chunk, sizeof(Chunk));
    if (N <= 0) {
      ErrorOut = N == 0 ? "connection closed"
                        : formatString("transport error: %s",
                                       std::strerror(errno));
      return std::nullopt;
    }
    Dec.append(Chunk, static_cast<size_t>(N));
  }
}
