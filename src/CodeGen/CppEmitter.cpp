//===- CodeGen/CppEmitter.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/CppEmitter.h"

#include "tessla/Support/Format.h"

#include <cassert>

using namespace tessla;

namespace {

/// One argument of an emitted lift body: the stream it stands for (type
/// and mutability queries) plus the C++ expression that reads it — the
/// stream's variable normally, a last-slot or a fused-producer local for
/// the fused opcodes.
struct ArgRef {
  StreamId Id;
  std::string Expr;
};

/// Stateful emitter for one lowered program. Emission is driven by the
/// program's *steps* (opcodes), not the spec's stream kinds, so optimized
/// programs — folded constants, fused steps, compacted slot tables —
/// emit exactly what the interpreter executes.
class Emitter {
public:
  Emitter(const Program &P, const CppEmitterOptions &Opts,
          DiagnosticEngine &Diags)
      : P(P), S(P.spec()), Opts(Opts), Diags(Diags) {}

  std::optional<std::string> run();

private:
  const Program &P;
  const Spec &S;
  const CppEmitterOptions &Opts;
  DiagnosticEngine &Diags;
  std::string Out;
  bool Failed = false;

  void line(const std::string &Text = "") {
    Out += Text;
    Out += '\n';
  }
  void unsupported(StreamId Id, const std::string &What) {
    Diags.error(S.stream(Id).Loc,
                formatString("C++ backend: %s (stream '%s')", What.c_str(),
                             S.stream(Id).Name.c_str()));
    Failed = true;
  }

  bool isMut(StreamId Id) const { return P.isMutable(Id); }
  /// A stream without a value slot never carries an event (nil, or
  /// optimized away); it gets no variable and every read of it folds to
  /// "absent".
  bool dead(StreamId Id) const {
    return P.valueSlot(Id) == P.numValueSlots();
  }
  std::string var(StreamId Id) const { return "v_" + S.stream(Id).Name; }
  std::string has(StreamId Id) const { return var(Id) + "_has"; }

  std::string hashFor(const Type &Elem) const {
    if (Elem.kind() == TypeKind::Unit)
      return "tessla::cgen::UnitHash";
    return "std::hash<" + scalarType(Elem) + ">";
  }

  std::string scalarType(const Type &T) const {
    switch (T.kind()) {
    case TypeKind::Unit:
      return "tessla::cgen::UnitV";
    case TypeKind::Bool:
      return "bool";
    case TypeKind::Int:
      return "int64_t";
    case TypeKind::Float:
      return "double";
    case TypeKind::String:
      return "std::string";
    default:
      return "/*unsupported*/void";
    }
  }

  /// C++ type of a stream variable.
  std::string cppType(StreamId Id) const {
    const Type &T = S.stream(Id).Ty;
    bool Mut = isMut(Id);
    switch (T.kind()) {
    case TypeKind::Set: {
      std::string E = scalarType(T.params()[0]);
      std::string H = hashFor(T.params()[0]);
      if (Mut)
        return "std::shared_ptr<std::unordered_set<" + E + ", " + H + ">>";
      return "tessla::HamtSet<" + E + ", " + H + ">";
    }
    case TypeKind::Map: {
      std::string K = scalarType(T.params()[0]);
      std::string V = scalarType(T.params()[1]);
      std::string H = hashFor(T.params()[0]);
      if (Mut)
        return "std::shared_ptr<std::unordered_map<" + K + ", " + V + ", " +
               H + ">>";
      return "tessla::HamtMap<" + K + ", " + V + ", " + H + ">";
    }
    case TypeKind::Queue: {
      std::string E = scalarType(T.params()[0]);
      if (Mut)
        return "std::shared_ptr<std::deque<" + E + ">>";
      return "tessla::PQueue<" + E + ">";
    }
    default:
      return scalarType(T);
    }
  }

  /// The element type inside an aggregate variable (for make_shared).
  std::string innerType(StreamId Id) const {
    std::string Full = cppType(Id);
    assert(Full.substr(0, 16) == "std::shared_ptr<" && "not a mutable agg");
    return Full.substr(16, Full.size() - 17);
  }

  std::string literal(const ConstantLit &Lit) const {
    struct Renderer {
      std::string operator()(std::monostate) const {
        return "tessla::cgen::UnitV{}";
      }
      std::string operator()(bool B) const { return B ? "true" : "false"; }
      std::string operator()(int64_t I) const {
        return "int64_t{" + std::to_string(I) + "}";
      }
      std::string operator()(double D) const {
        std::string Text = formatDouble(D);
        if (Text.find_first_of(".eE") == std::string::npos)
          Text += ".0";
        return Text;
      }
      std::string operator()(const std::string &Str) const {
        return "std::string(\"" + escapeString(Str) + "\")";
      }
    };
    return std::visit(Renderer{}, Lit.V);
  }

  /// Renders a folded scalar constant (Const/ConstTick payloads).
  std::string valueLiteral(StreamId Id, const Value &V) {
    switch (V.kind()) {
    case Value::Kind::Unit:
      return "tessla::cgen::UnitV{}";
    case Value::Kind::Bool:
      return V.getBool() ? "true" : "false";
    case Value::Kind::Int:
      return "int64_t{" + std::to_string(V.getInt()) + "}";
    case Value::Kind::Float: {
      std::string Text = formatDouble(V.getFloat());
      if (Text.find_first_of(".eE") == std::string::npos)
        Text += ".0";
      return Text;
    }
    case Value::Kind::String:
      return "std::string(\"" + escapeString(V.getString()) + "\")";
    default:
      unsupported(Id, "aggregate-valued constant step");
      return "{}";
    }
  }

  /// Builtins whose emitted body can call tessla::cgen::fail(). (Div on
  /// Float cannot, but an extra context store is a harmless dead write.)
  static bool fallibleBuiltin(BuiltinId Fn) {
    switch (Fn) {
    case BuiltinId::Div:
    case BuiltinId::Mod:
    case BuiltinId::MapGet:
    case BuiltinId::QueueFront:
    case BuiltinId::QueueDeq:
      return true;
    default:
      return false;
    }
  }

  /// In shim mode, records which stream's step body is about to run so a
  /// thrown cgen::fail() renders with that stream's name, exactly like
  /// Monitor::failAt attributes the failure. No-op otherwise.
  void emitFailContext(const std::string &Indent, BuiltinId Fn,
                       StreamId At) {
    if (Opts.EmitNativeShim && fallibleBuiltin(Fn))
      line(Indent + "CgenCtx = \"" + S.stream(At).Name + "\";");
  }

  void emitHeader();
  void emitVariables();
  void emitFeeds();
  void emitTriggering();
  void emitCalc();
  void emitStep(const ProgramStep &Step);
  std::vector<std::string> liftBodyStmts(BuiltinId Fn, StreamId DstId,
                                         const std::string &Dst, bool Mut,
                                         const std::vector<ArgRef> &Args);
  void emitMain();
  void emitBenchMain();
  void emitNativeShim();
};

std::optional<std::string> Emitter::run() {
  // Pre-flight checks for unsupported constructs, against the *steps*
  // actually emitted (after optimization the spec may mention lifts that
  // no longer exist, and fused steps carry two builtins each).
  for (StreamId Id : S.inputs())
    if (S.stream(Id).Ty.isComplex())
      unsupported(Id, "aggregate-typed input streams");
  auto CheckCmp = [&](StreamId At, BuiltinId Fn,
                      const std::vector<StreamId> &Args) {
    bool Comparison =
        Fn == BuiltinId::Eq || Fn == BuiltinId::Neq ||
        Fn == BuiltinId::Lt || Fn == BuiltinId::Leq ||
        Fn == BuiltinId::Gt || Fn == BuiltinId::Geq ||
        Fn == BuiltinId::Min || Fn == BuiltinId::Max;
    if (!Comparison)
      return;
    for (StreamId A : Args)
      if (S.stream(A).Ty.isComplex())
        unsupported(At, "comparisons between aggregates");
  };
  for (const ProgramStep &Step : P.steps()) {
    switch (Step.Op) {
    case Opcode::LiftAll:
    case Opcode::LiftFirstRest:
      CheckCmp(Step.Id, Step.Fn, Step.Args);
      break;
    case Opcode::FusedLastLift: {
      std::vector<StreamId> Args{Step.Args[0]};
      Args.insert(Args.end(), Step.Args.begin() + 2, Step.Args.end());
      CheckCmp(Step.Id, Step.Fn, Args);
      break;
    }
    case Opcode::FusedLiftLift: {
      std::vector<StreamId> Inner(Step.Args.begin(),
                                  Step.Args.begin() + Step.FusedArity);
      CheckCmp(Step.Id, Step.Fn2, Inner);
      std::vector<StreamId> Outer{Step.FusedId};
      Outer.insert(Outer.end(), Step.Args.begin() + Step.FusedArity,
                   Step.Args.end());
      CheckCmp(Step.Id, Step.Fn, Outer);
      break;
    }
    default:
      break;
    }
  }
  if (Failed)
    return std::nullopt;

  emitHeader();
  line("class " + Opts.ClassName + " {");
  line("public:");
  line("  using OutputFn =");
  line("      std::function<void(int64_t, const char *, const "
       "std::string &)>;");
  line("  void setOutputHandler(OutputFn Fn) { Out = std::move(Fn); }");
  if (Opts.EmitNativeShim) {
    line("  // Native-shim introspection: the failure context for");
    line("  // rendering interpreter-identical error messages, and the");
    line("  // output count (maintained even without a handler, like");
    line("  // Monitor::outputEvents).");
    line("  int64_t cgenTs() const { return CgenTs; }");
    line("  const char *cgenCtx() const { return CgenCtx; }");
    line("  void cgenClearContext() { CgenCtx = nullptr; }");
    line("  uint64_t cgenNumOutputs() const { return NumOutputs; }");
  }
  line();
  emitFeeds();
  line("  void finish(int64_t Horizon = "
       "std::numeric_limits<int64_t>::max()) {");
  line("    flushBefore(Horizon == std::numeric_limits<int64_t>::max()");
  line("                    ? Horizon");
  line("                    : Horizon + 1);");
  line("    Finished = true;");
  line("  }");
  line();
  line("private:");
  line("  OutputFn Out;");
  line("  int64_t PendingTs = 0;");
  line("  bool CalcDone = false;");
  line("  bool Finished = false;");
  if (Opts.EmitNativeShim) {
    line("  int64_t CgenTs = 0;");
    line("  const char *CgenCtx = nullptr;");
    line("  uint64_t NumOutputs = 0;");
  }
  line();
  emitVariables();
  emitTriggering();
  emitCalc();
  line("};");
  if (Opts.EmitNativeShim)
    emitNativeShim(); // the shim is the driver; mains do not apply
  else if (Opts.EmitBenchMain)
    emitBenchMain();
  else if (Opts.EmitMain)
    emitMain();
  if (Failed)
    return std::nullopt;
  return Out;
}

void Emitter::emitHeader() {
  line("// Monitor generated by the tessla-aggregate-update C++ backend.");
  line("//");
  line("// Flat specification:");
  std::string SpecText = S.str();
  size_t Pos = 0;
  while (Pos < SpecText.size()) {
    size_t End = SpecText.find('\n', Pos);
    if (End == std::string::npos)
      End = SpecText.size();
    line("//   " + SpecText.substr(Pos, End - Pos));
    Pos = End + 1;
  }
  line("//");
  line("// Mutable aggregate streams:");
  std::string Muts;
  for (StreamId Id = 0; Id != S.numStreams(); ++Id)
    if (P.isMutable(Id))
      Muts += " " + S.stream(Id).Name;
  line("//  " + (Muts.empty() ? " (none)" : Muts));
  line();
  if (Opts.EmitNativeShim) {
    line("// Embedded in a host process: failures must surface as");
    line("// per-instance error strings, not abort().");
    line("#define TESSLA_CGEN_FAIL_THROWS 1");
  }
  line("#include \"tessla/CodeGen/RuntimeSupport.h\"");
  line();
  line("#include <cmath>");
  line("#include <cstdint>");
  line("#include <functional>");
  line("#include <limits>");
  line("#include <string>");
  line();
}

void Emitter::emitVariables() {
  line("  // Stream variables (current timestamp), one per live value");
  line("  // slot of the program.");
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    if (dead(Id))
      continue; // no slot: nil or optimized away, never carries events
    line("  bool " + has(Id) + " = false;");
    line("  " + cppType(Id) + " " + var(Id) + "{};");
  }
  line();
  // *_last slots, straight from the program's slot table.
  if (!P.lastSlots().empty()) {
    line("  // *_last slots (value of the most recent event).");
    for (const LastSlot &L : P.lastSlots()) {
      if (dead(L.Source))
        continue; // the source never fires; the slot stays empty
      line("  bool " + var(L.Source) + "_last_init = false;");
      line("  " + cppType(L.Source) + " " + var(L.Source) + "_last{};");
    }
    line();
  }
  // *_nextTs slots, one per program delay slot.
  if (!P.delays().empty()) {
    line("  // *_nextTs slots (next potential delay event).");
    for (const DelaySlot &D : P.delays()) {
      line("  bool " + var(D.Id) + "_nextTs_set = false;");
      line("  int64_t " + var(D.Id) + "_nextTs = 0;");
    }
    line();
  }
}

void Emitter::emitFeeds() {
  for (StreamId Id : S.inputs()) {
    const StreamDef &D = S.stream(Id);
    line("  void feed_" + D.Name + "(int64_t Ts, " + cppType(Id) +
         " Value) {");
    line("    if (Finished || Ts < PendingTs ||");
    line("        (Ts == PendingTs && CalcDone))");
    line("      tessla::cgen::fail(\"input events out of order\");");
    line("    if (Ts > PendingTs) {");
    line("      flushBefore(Ts);");
    line("      PendingTs = Ts;");
    line("      CalcDone = false;");
    line("    }");
    line("    " + var(Id) + " = std::move(Value);");
    line("    " + has(Id) + " = true;");
    line("  }");
  }
  line();
}

void Emitter::emitTriggering() {
  line("  // --- Triggering section (paper, section III-B). ---");
  line("  int64_t minNextDelay() const {");
  line("    int64_t Min = std::numeric_limits<int64_t>::max();");
  for (const DelaySlot &D : P.delays()) {
    line("    if (" + var(D.Id) + "_nextTs_set && " + var(D.Id) +
         "_nextTs < Min)");
    line("      Min = " + var(D.Id) + "_nextTs;");
  }
  line("    return Min;");
  line("  }");
  line();
  line("  void flushBefore(int64_t T) {");
  line("    if (!CalcDone) {");
  line("      calc(PendingTs);");
  line("      CalcDone = true;");
  line("    }");
  line("    for (;;) {");
  line("      int64_t M = minNextDelay();");
  line("      if (M >= T)");
  line("        return;");
  line("      calc(M);");
  line("    }");
  line("  }");
  line();
}

std::vector<std::string>
Emitter::liftBodyStmts(BuiltinId Fn, StreamId DstId, const std::string &Dst,
                       bool Mut, const std::vector<ArgRef> &Args) {
  auto A = [&](unsigned I) { return Args[I].Expr; };
  // Mutable aggregates are accessed through the shared_ptr; helpers take
  // the pointee.
  auto Deref = [&](unsigned I) {
    return isMut(Args[I].Id) ? "*" + A(I) : A(I);
  };
  auto ArgTy = [&](unsigned I) { return S.stream(Args[I].Id).Ty.kind(); };
  const std::string &R = Dst;
  std::vector<std::string> Body; // statements (without guard/indent)

  auto Assign = [&](const std::string &Expr) {
    Body.push_back(R + " = " + Expr + ";");
  };

  switch (Fn) {
  case BuiltinId::Merge:
  case BuiltinId::Filter:
  case BuiltinId::SetUpdate:
    assert(false && "handled by the caller's presence logic");
    break;
  case BuiltinId::Ite:
    Assign(A(0) + " ? " + A(1) + " : " + A(2));
    break;
  case BuiltinId::Add:
    Assign(A(0) + " + " + A(1));
    break;
  case BuiltinId::Sub:
    Assign(A(0) + " - " + A(1));
    break;
  case BuiltinId::Mul:
    Assign(A(0) + " * " + A(1));
    break;
  case BuiltinId::Div:
    if (ArgTy(0) == TypeKind::Int)
      Assign("tessla::cgen::checkedDiv(" + A(0) + ", " + A(1) + ")");
    else
      Assign(A(0) + " / " + A(1));
    break;
  case BuiltinId::Mod:
    if (ArgTy(0) == TypeKind::Int)
      Assign("tessla::cgen::checkedMod(" + A(0) + ", " + A(1) + ")");
    else
      Assign("std::fmod(" + A(0) + ", " + A(1) + ")");
    break;
  case BuiltinId::Neg:
    Assign("-" + A(0));
    break;
  case BuiltinId::Abs:
    if (ArgTy(0) == TypeKind::Int)
      Assign(A(0) + " < 0 ? -" + A(0) + " : " + A(0));
    else
      Assign("std::fabs(" + A(0) + ")");
    break;
  case BuiltinId::Min:
    Assign("std::min(" + A(0) + ", " + A(1) + ")");
    break;
  case BuiltinId::Max:
    Assign("std::max(" + A(0) + ", " + A(1) + ")");
    break;
  case BuiltinId::Eq:
    Assign(A(0) + " == " + A(1));
    break;
  case BuiltinId::Neq:
    Assign(A(0) + " != " + A(1));
    break;
  case BuiltinId::Lt:
    Assign(A(0) + " < " + A(1));
    break;
  case BuiltinId::Leq:
    Assign(A(0) + " <= " + A(1));
    break;
  case BuiltinId::Gt:
    Assign(A(0) + " > " + A(1));
    break;
  case BuiltinId::Geq:
    Assign(A(0) + " >= " + A(1));
    break;
  case BuiltinId::LAnd:
    Assign(A(0) + " && " + A(1));
    break;
  case BuiltinId::LOr:
    Assign(A(0) + " || " + A(1));
    break;
  case BuiltinId::LNot:
    Assign("!" + A(0));
    break;
  case BuiltinId::ToFloat:
    Assign("static_cast<double>(" + A(0) + ")");
    break;
  case BuiltinId::ToInt:
    Assign("static_cast<int64_t>(" + A(0) + ")");
    break;

  case BuiltinId::SetEmpty:
  case BuiltinId::MapEmpty:
  case BuiltinId::QueueEmpty:
    if (Mut)
      Assign("std::make_shared<" + innerType(DstId) + ">()");
    else
      Assign(cppType(DstId) + "{}");
    break;

  case BuiltinId::SetAdd:
    if (Mut) {
      Assign(A(0));
      Body.push_back(R + "->insert(" + A(1) + ");");
    } else {
      Assign(A(0) + ".insert(" + A(1) + ")");
    }
    break;
  case BuiltinId::SetRemove:
    if (Mut) {
      Assign(A(0));
      Body.push_back(R + "->erase(" + A(1) + ");");
    } else {
      Assign(A(0) + ".erase(" + A(1) + ")");
    }
    break;
  case BuiltinId::SetToggle:
    if (Mut) {
      Assign(A(0));
      Body.push_back("if (" + R + "->count(" + A(1) + "))");
      Body.push_back("  " + R + "->erase(" + A(1) + ");");
      Body.push_back("else");
      Body.push_back("  " + R + "->insert(" + A(1) + ");");
    } else {
      Assign(A(0) + ".contains(" + A(1) + ") ? " + A(0) + ".erase(" + A(1) +
             ") : " + A(0) + ".insert(" + A(1) + ")");
    }
    break;
  case BuiltinId::SetUnion:
  case BuiltinId::SetDiff: {
    const char *IntoFn = Fn == BuiltinId::SetUnion
                             ? "tessla::cgen::setUnionInto"
                             : "tessla::cgen::setDiffInto";
    const char *OfFn = Fn == BuiltinId::SetUnion
                           ? "tessla::cgen::setUnionOf"
                           : "tessla::cgen::setDiffOf";
    if (Mut) {
      Assign(A(0));
      Body.push_back(std::string(IntoFn) + "(*" + R + ", " + Deref(1) +
                     ");");
    } else {
      Assign(std::string(OfFn) + "(" + A(0) + ", " + Deref(1) + ")");
    }
    break;
  }
  case BuiltinId::StrConcat:
    Assign(A(0) + " + " + A(1));
    break;
  case BuiltinId::StrLen:
    Assign("static_cast<int64_t>(" + A(0) + ".size())");
    break;
  case BuiltinId::SetContains:
    Assign(isMut(Args[0].Id) ? A(0) + "->count(" + A(1) + ") != 0"
                             : A(0) + ".contains(" + A(1) + ")");
    break;
  case BuiltinId::SetSize:
  case BuiltinId::MapSize:
  case BuiltinId::QueueSize:
    Assign("static_cast<int64_t>(" +
           (isMut(Args[0].Id) ? A(0) + "->size()" : A(0) + ".size()") + ")");
    break;

  case BuiltinId::MapPut:
    if (Mut) {
      Assign(A(0));
      Body.push_back("(*" + R + ")[" + A(1) + "] = " + A(2) + ";");
    } else {
      Assign(A(0) + ".set(" + A(1) + ", " + A(2) + ")");
    }
    break;
  case BuiltinId::MapRemove:
    if (Mut) {
      Assign(A(0));
      Body.push_back(R + "->erase(" + A(1) + ");");
    } else {
      Assign(A(0) + ".erase(" + A(1) + ")");
    }
    break;
  case BuiltinId::MapGet:
    Assign("tessla::cgen::mapGet(" + Deref(0) + ", " + A(1) + ")");
    break;
  case BuiltinId::MapGetOrElse:
    Assign("tessla::cgen::getOrElse(" + Deref(0) + ", " + A(1) + ", " +
           A(2) + ")");
    break;
  case BuiltinId::MapContains:
    Assign(isMut(Args[0].Id) ? A(0) + "->count(" + A(1) + ") != 0"
                             : A(0) + ".find(" + A(1) + ") != nullptr");
    break;

  case BuiltinId::QueueEnq:
    if (Mut) {
      Assign(A(0));
      Body.push_back(R + "->push_back(" + A(1) + ");");
    } else {
      Assign(A(0) + ".enqueue(" + A(1) + ")");
    }
    break;
  case BuiltinId::QueueDeq:
    if (Mut) {
      Assign(A(0));
      Body.push_back("tessla::cgen::queuePop(*" + R + ");");
    } else {
      Assign("tessla::cgen::queuePopped(" + A(0) + ")");
    }
    break;
  case BuiltinId::QueueFront:
    Assign("tessla::cgen::queueFront(" + Deref(0) + ")");
    break;
  case BuiltinId::QueueTrim:
    if (Mut) {
      Assign(A(0));
      Body.push_back("tessla::cgen::queueTrim(*" + R + ", " + A(1) + ");");
    } else {
      Assign("tessla::cgen::queueTrimmed(" + A(0) + ", " + A(1) + ")");
    }
    break;
  }
  return Body;
}

void Emitter::emitStep(const ProgramStep &Step) {
  StreamId Id = Step.Id;
  std::string Name = S.stream(Id).Name;

  // A guard over the presence flags of live streams; any dead stream
  // makes the whole conjunction statically false.
  auto AllPresent = [&](const std::vector<StreamId> &Ids,
                        std::string &Guard) {
    Guard.clear();
    for (StreamId A : Ids) {
      if (dead(A))
        return false;
      if (!Guard.empty())
        Guard += " && ";
      Guard += has(A);
    }
    return true;
  };
  auto Never = [&](const std::string &Why) {
    line("    // " + Name + ": never fires (" + Why + ")");
  };

  switch (Step.Op) {
  case Opcode::Skip:
    if (Step.Kind == StreamKind::Input)
      line("    // " + Name + ": input (buffered by feed_" + Name + ")");
    else if (Step.Kind == StreamKind::Nil)
      line("    // " + Name + ": nil");
    else
      Never("folded");
    break;

  case Opcode::Const:
    line("    // " + Name + " = const " + Step.ConstVal.str() +
         (Step.Folded ? "   [folded]" : ""));
    line("    if (ts == 0) {");
    line("      " + var(Id) + " = " + valueLiteral(Id, Step.ConstVal) +
         ";");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;

  case Opcode::ConstTick: {
    line("    // " + Name + " = const " + Step.ConstVal.str() + " on " +
         S.stream(Step.Args[0]).Name + "   [folded]");
    std::string Cond = "ts == 0";
    if (!dead(Step.Args[0]))
      Cond += " || " + has(Step.Args[0]);
    line("    if (" + Cond + ") {");
    line("      " + var(Id) + " = " + valueLiteral(Id, Step.ConstVal) +
         ";");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::Time: {
    line("    // " + Name + " = time(" + S.stream(Step.Args[0]).Name +
         ")");
    if (dead(Step.Args[0])) {
      Never("silent operand");
      break;
    }
    line("    if (" + has(Step.Args[0]) + ") {");
    line("      " + var(Id) + " = ts;");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::Last: {
    StreamId V = Step.Args[0], R = Step.Args[1];
    line("    // " + Name + " = last(" + S.stream(V).Name + ", " +
         S.stream(R).Name + ")");
    if (dead(V) || dead(R)) {
      Never("silent operand");
      break;
    }
    line("    if (" + has(R) + " && " + var(V) + "_last_init) {");
    line("      " + var(Id) + " = " + var(V) + "_last;");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::Delay:
    line("    // " + Name + " = delay(" + S.stream(Step.Args[0]).Name +
         ", " + S.stream(Step.Args[1]).Name + ")");
    line("    if (" + var(Id) + "_nextTs_set && " + var(Id) +
         "_nextTs == ts) {");
    line("      " + var(Id) + " = tessla::cgen::UnitV{};");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;

  case Opcode::LiftMerge: {
    line("    // " + Name + " = merge(...)");
    bool Any = false;
    for (StreamId A : Step.Args) {
      if (dead(A))
        continue;
      line(std::string(Any ? "    } else if (" : "    if (") + has(A) +
           ") {");
      line("      " + var(Id) + " = " + var(A) + ";");
      line("      " + has(Id) + " = true;");
      Any = true;
    }
    if (Any)
      line("    }");
    else
      Never("all operands silent");
    break;
  }

  case Opcode::LiftFilter: {
    StreamId A0 = Step.Args[0], C = Step.Args[1];
    line("    // " + Name + " = filter(" + S.stream(A0).Name + ", " +
         S.stream(C).Name + ")");
    if (dead(A0) || dead(C)) {
      Never("silent operand");
      break;
    }
    line("    if (" + has(A0) + " && " + has(C) + " && " + var(C) + ") {");
    line("      " + var(Id) + " = " + var(A0) + ";");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::LiftFirstRest: {
    if (Step.Fn != BuiltinId::SetUpdate) {
      unsupported(Id, "unknown first-and-any-rest builtin");
      break;
    }
    StreamId Base = Step.Args[0];
    line("    // " + Name + " = setUpdate(...)");
    std::vector<StreamId> Rest;
    for (size_t I = 1; I != Step.Args.size(); ++I)
      if (!dead(Step.Args[I]))
        Rest.push_back(Step.Args[I]);
    if (dead(Base) || Rest.empty()) {
      Never("silent operand");
      break;
    }
    std::string Or;
    for (StreamId A : Rest)
      Or += (Or.empty() ? "" : " || ") + has(A);
    line("    if (" + has(Base) + " && (" + Or + ")) {");
    line("      " + var(Id) + " = " + var(Base) + ";");
    bool Mut = isMut(Id);
    auto Update = [&](size_t ArgIndex, const char *MutOp,
                      const char *PersistOp) {
      if (ArgIndex >= Step.Args.size() || dead(Step.Args[ArgIndex]))
        return;
      StreamId A = Step.Args[ArgIndex];
      line("      if (" + has(A) + ")");
      if (Mut)
        line("        " + var(Id) + "->" + MutOp + "(" + var(A) + ");");
      else
        line("        " + var(Id) + " = " + var(Id) + "." + PersistOp +
             "(" + var(A) + ");");
    };
    Update(1, "insert", "insert");
    Update(2, "erase", "erase");
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::LiftAll: {
    line("    // " + Name + " = " +
         std::string(builtinInfo(Step.Fn).Name) + "(...)");
    std::string Guard;
    if (!AllPresent(Step.Args, Guard)) {
      Never("silent operand");
      break;
    }
    std::vector<ArgRef> Args;
    for (StreamId A : Step.Args)
      Args.push_back({A, var(A)});
    line("    if (" + Guard + ") {");
    emitFailContext("      ", Step.Fn, Id);
    for (const std::string &Stmt :
         liftBodyStmts(Step.Fn, Id, var(Id), isMut(Id), Args))
      line("      " + Stmt);
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::FusedLastLift: {
    // Consumer lift reading the fused last(v, r) straight from the last
    // slot: fires when r fires, the slot is initialized and the rest is
    // present — the unfused pair's guards verbatim.
    StreamId V = Step.Args[0], R = Step.Args[1];
    line("    // " + Name + " = " +
         std::string(builtinInfo(Step.Fn).Name) + "(last(" +
         S.stream(V).Name + ", " + S.stream(R).Name + "), ...)   [fused]");
    std::vector<StreamId> Rest(Step.Args.begin() + 2, Step.Args.end());
    std::string RestGuard;
    if (dead(V) || dead(R) || !AllPresent(Rest, RestGuard)) {
      Never("silent operand");
      break;
    }
    std::string Guard = has(R) + " && " + var(V) + "_last_init";
    if (!RestGuard.empty())
      Guard += " && " + RestGuard;
    std::vector<ArgRef> Args;
    Args.push_back({V, var(V) + "_last"});
    for (StreamId A : Rest)
      Args.push_back({A, var(A)});
    line("    if (" + Guard + ") {");
    emitFailContext("      ", Step.Fn, Id);
    for (const std::string &Stmt :
         liftBodyStmts(Step.Fn, Id, var(Id), isMut(Id), Args))
      line("      " + Stmt);
    line("      " + has(Id) + " = true;");
    line("    }");
    break;
  }

  case Opcode::FusedLiftLift: {
    // The fused-away producer evaluates into a scoped local whenever its
    // own arguments are present (destructive updates and failures happen
    // exactly as unfused), and the consumer fires only when its rest is
    // present too.
    std::vector<StreamId> Inner(Step.Args.begin(),
                                Step.Args.begin() + Step.FusedArity);
    std::vector<StreamId> Rest(Step.Args.begin() + Step.FusedArity,
                               Step.Args.end());
    line("    // " + Name + " = " +
         std::string(builtinInfo(Step.Fn).Name) + "(" +
         std::string(builtinInfo(Step.Fn2).Name) + "(...), ...)   "
         "[fused]");
    std::string InnerGuard;
    if (!AllPresent(Inner, InnerGuard)) {
      Never("silent operand");
      break;
    }
    std::string RestGuard;
    bool RestLive = AllPresent(Rest, RestGuard);
    std::vector<ArgRef> InnerArgs;
    for (StreamId A : Inner)
      InnerArgs.push_back({A, var(A)});
    std::string Tmp = var(Step.FusedId);
    line("    if (" + InnerGuard + ") {");
    line("      " + cppType(Step.FusedId) + " " + Tmp + "{};");
    // A failure in the fused-away producer's body is attributed to the
    // producer stream (Monitor::runCalc fails at Step.FusedId there).
    emitFailContext("      ", Step.Fn2, Step.FusedId);
    for (const std::string &Stmt :
         liftBodyStmts(Step.Fn2, Step.FusedId, Tmp, isMut(Step.FusedId),
                       InnerArgs))
      line("      " + Stmt);
    if (RestLive) {
      std::string Indent = "      ";
      if (!RestGuard.empty()) {
        line("      if (" + RestGuard + ") {");
        Indent = "        ";
      }
      std::vector<ArgRef> OuterArgs;
      OuterArgs.push_back({Step.FusedId, Tmp});
      for (StreamId A : Rest)
        OuterArgs.push_back({A, var(A)});
      emitFailContext(Indent, Step.Fn, Id);
      for (const std::string &Stmt :
           liftBodyStmts(Step.Fn, Id, var(Id), isMut(Id), OuterArgs))
        line(Indent + Stmt);
      line(Indent + has(Id) + " = true;");
      if (!RestGuard.empty())
        line("      }");
    }
    line("    }");
    break;
  }
  }
}

void Emitter::emitCalc() {
  line("  // --- Calculation section (paper, section III-A), in the");
  line("  // program's step order. ---");
  line("  void calc(int64_t ts) {");
  if (Opts.EmitNativeShim) {
    line("    CgenTs = ts;");
    line("    CgenCtx = nullptr;");
  }
  for (const ProgramStep &Step : P.steps())
    emitStep(Step);

  line();
  line("    // --- Emit outputs. ---");
  for (const OutputSlot &O : P.outputs()) {
    if (dead(O.Id)) {
      line("    // output " + S.stream(O.Id).Name + ": never fires");
      continue;
    }
    if (Opts.EmitNativeShim) {
      // Count outputs even without a handler, like Monitor.
      line("    if (" + has(O.Id) + ") {");
      line("      ++NumOutputs;");
      line("      if (Out)");
      line("        Out(ts, \"" + S.stream(O.Id).Name +
           "\", tessla::cgen::str(" + var(O.Id) + "));");
      line("    }");
    } else {
      line("    if (" + has(O.Id) + " && Out)");
      line("      Out(ts, \"" + S.stream(O.Id).Name +
           "\", tessla::cgen::str(" + var(O.Id) + "));");
    }
  }

  line();
  line("    // --- Update *_last slots. ---");
  for (const LastSlot &L : P.lastSlots()) {
    if (dead(L.Source))
      continue;
    line("    if (" + has(L.Source) + ") {");
    line("      " + var(L.Source) + "_last = " + var(L.Source) + ";");
    line("      " + var(L.Source) + "_last_init = true;");
    line("    }");
  }

  if (!P.delays().empty()) {
    line();
    line("    // --- Delay scheduling. ---");
    for (const DelaySlot &D : P.delays()) {
      std::string Reset = has(D.Id);
      if (!dead(D.ResetArg))
        Reset = has(D.ResetArg) + " || " + Reset;
      line("    if (" + Reset + ") {");
      if (dead(D.DelaysArg)) {
        line("      " + var(D.Id) + "_nextTs_set = false;");
      } else {
        line("      if (" + has(D.DelaysArg) + ") {");
        if (Opts.EmitNativeShim)
          line("        CgenCtx = \"" + S.stream(D.Id).Name + "\";");
        line("        if (" + var(D.DelaysArg) + " <= 0)");
        line("          tessla::cgen::fail(\"delay amounts must be "
             "positive\");");
        line("        " + var(D.Id) + "_nextTs = ts + " + var(D.DelaysArg) +
             ";");
        line("        " + var(D.Id) + "_nextTs_set = true;");
        line("      } else {");
        line("        " + var(D.Id) + "_nextTs_set = false;");
        line("      }");
      }
      line("    }");
    }
  }

  line();
  line("    // --- Reset current-value slots. ---");
  for (StreamId Id = 0; Id != S.numStreams(); ++Id) {
    if (dead(Id))
      continue;
    line("    " + has(Id) + " = false;");
  }
  line("  }");
}

void Emitter::emitMain() {
  line();
  line("// Reads 'ts: name = value' lines from stdin, prints outputs.");
  line("#include <iostream>");
  line("#include <sstream>");
  line();
  line("int main() {");
  line("  " + Opts.ClassName + " M;");
  line("  M.setOutputHandler([](int64_t Ts, const char *Name,");
  line("                        const std::string &V) {");
  line("    std::cout << Ts << \": \" << Name << \" = \" << V << \"\\n\";");
  line("  });");
  line("  std::string Line;");
  line("  while (std::getline(std::cin, Line)) {");
  line("    if (Line.empty() || Line[0] == '#')");
  line("      continue;");
  line("    std::istringstream In(Line);");
  line("    int64_t Ts;");
  line("    std::string Name, Eq, Val;");
  line("    char Colon;");
  line("    if (!(In >> Ts >> Colon >> Name >> Eq >> Val))");
  line("      continue;");
  for (StreamId Id : S.inputs()) {
    const StreamDef &D = S.stream(Id);
    std::string Conv;
    switch (D.Ty.kind()) {
    case TypeKind::Int:
      Conv = "std::stoll(Val)";
      break;
    case TypeKind::Float:
      Conv = "std::stod(Val)";
      break;
    case TypeKind::Bool:
      Conv = "Val == \"true\"";
      break;
    case TypeKind::String:
      Conv = "Val";
      break;
    case TypeKind::Unit:
      Conv = "tessla::cgen::UnitV{}";
      break;
    default:
      Conv = "{}";
      break;
    }
    line("    if (Name == \"" + D.Name + "\")");
    line("      M.feed_" + D.Name + "(Ts, " + Conv + ");");
  }
  line("  }");
  line("  M.finish();");
  line("  return 0;");
  line("}");
}

void Emitter::emitBenchMain() {
  std::vector<StreamId> Inputs = S.inputs();
  if (Inputs.size() != 1 ||
      S.stream(Inputs[0]).Ty.kind() != TypeKind::Int) {
    unsupported(Inputs.empty() ? 0 : Inputs[0],
                "benchmark driver needs exactly one Int input");
    return;
  }
  const std::string Feed = "feed_" + S.stream(Inputs[0]).Name;
  line();
  line("// Self-measuring synthetic benchmark driver:");
  line("//   ./monitor <count> <domain> <seed>");
  line("// prints \"<outputs> <seconds>\".");
  line("#include <chrono>");
  line("#include <cinttypes>");
  line("#include <random>");
  line();
  line("int main(int argc, char **argv) {");
  line("  uint64_t Count = argc > 1 ? std::strtoull(argv[1], nullptr, "
       "10) : 1000000;");
  line("  int64_t Domain = argc > 2 ? std::strtoll(argv[2], nullptr, 10) "
       ": 1000;");
  line("  uint64_t Seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) "
       ": 1;");
  line("  " + Opts.ClassName + " M;");
  line("  uint64_t Outputs = 0;");
  line("  M.setOutputHandler([&Outputs](int64_t, const char *,");
  line("                                const std::string &) {");
  line("    ++Outputs;");
  line("  });");
  line("  std::mt19937_64 Rng(Seed);");
  line("  std::uniform_int_distribution<int64_t> Dist(0, Domain - 1);");
  line("  auto Start = std::chrono::steady_clock::now();");
  line("  for (uint64_t I = 0; I != Count; ++I)");
  line("    M." + Feed + "(static_cast<int64_t>(I + 1), Dist(Rng));");
  line("  M.finish();");
  line("  auto End = std::chrono::steady_clock::now();");
  line("  double Seconds =");
  line("      std::chrono::duration<double>(End - Start).count();");
  line("  std::printf(\"%\" PRIu64 \" %.6f\\n\", Outputs, Seconds);");
  line("  return 0;");
  line("}");
}

void Emitter::emitNativeShim() {
  const std::vector<StreamId> Inputs = S.inputs();
  line();
  line("// --- tessla_native_* extern \"C\" shim (ABI v" +
       std::to_string(NativeShimAbiVersion) + "). ---");
  line("//");
  line("// Loaded via dlopen by the native execution engine; see");
  line("// tessla/CodeGen/NativeCompile.h for the loader contract. The");
  line("// host pre-validates feed ordering exactly like Monitor::feed,");
  line("// so the weaker in-class checks are unreachable backstops.");
  line();
  line("namespace {");
  line();
  line("struct TesslaNativeInstance {");
  line("  " + Opts.ClassName + " M;");
  line("  std::string Error;");
  line("  bool Failed = false;");
  line("};");
  line();
  line("void tesslaNativeRecordError(TesslaNativeInstance *I,");
  line("                             const char *Message) {");
  line("  I->Failed = true;");
  line("  // Render exactly like Monitor::failAt when a step context is");
  line("  // recorded; feed/finish backstops surface the raw message.");
  line("  if (const char *Stream = I->M.cgenCtx())");
  line("    I->Error = \"at t=\" + std::to_string(I->M.cgenTs()) +");
  line("               \", stream '\" + Stream + \"': \" + Message;");
  line("  else");
  line("    I->Error = Message;");
  line("}");
  line();
  line("} // namespace");
  line();
  line("extern \"C\" {");
  line();
  line("typedef void (*tessla_native_output_fn)(void *Ctx, int64_t Ts,");
  line("                                        const char *Stream,");
  line("                                        const char *Value);");
  line();
  line("int64_t tessla_native_abi(void) { return " +
       std::to_string(NativeShimAbiVersion) + "; }");
  line();
  line("uint64_t tessla_native_checksum(void) {");
  line("  return " + std::to_string(Opts.ShimChecksum) + "ULL;");
  line("}");
  line();
  line("int32_t tessla_native_num_inputs(void) { return " +
       std::to_string(Inputs.size()) + "; }");
  line();
  line("const char *tessla_native_input_name(int32_t Idx) {");
  line("  switch (Idx) {");
  for (size_t I = 0; I != Inputs.size(); ++I)
    line("  case " + std::to_string(I) + ":\n    return \"" +
         S.stream(Inputs[I]).Name + "\";");
  line("  default:");
  line("    return nullptr;");
  line("  }");
  line("}");
  line();
  line("void *tessla_native_create(tessla_native_output_fn Fn, void *Ctx) {");
  line("  auto *I = new TesslaNativeInstance();");
  line("  if (Fn)");
  line("    I->M.setOutputHandler([Fn, Ctx](int64_t Ts, const char *Stream,");
  line("                                    const std::string &V) {");
  line("      Fn(Ctx, Ts, Stream, V.c_str());");
  line("    });");
  line("  return I;");
  line("}");
  line();
  line("int32_t tessla_native_feed(void *Inst, int32_t Input, int64_t Ts,");
  line("                           int64_t IntV, double FloatV,");
  line("                           const char *StrV, int32_t BoolV) {");
  line("  (void)IntV;");
  line("  (void)FloatV;");
  line("  (void)StrV;");
  line("  (void)BoolV;");
  line("  auto *I = static_cast<TesslaNativeInstance *>(Inst);");
  line("  if (I->Failed)");
  line("    return 0;");
  line("  I->M.cgenClearContext();");
  line("  try {");
  line("    switch (Input) {");
  for (size_t Idx = 0; Idx != Inputs.size(); ++Idx) {
    const StreamDef &D = S.stream(Inputs[Idx]);
    std::string Conv;
    switch (D.Ty.kind()) {
    case TypeKind::Int:
      Conv = "IntV";
      break;
    case TypeKind::Float:
      Conv = "FloatV";
      break;
    case TypeKind::Bool:
      Conv = "BoolV != 0";
      break;
    case TypeKind::String:
      Conv = "std::string(StrV ? StrV : \"\")";
      break;
    case TypeKind::Unit:
      Conv = "tessla::cgen::UnitV{}";
      break;
    default:
      Conv = "{}"; // unreachable: aggregate inputs fail preflight
      break;
    }
    line("    case " + std::to_string(Idx) + ":");
    line("      I->M.feed_" + D.Name + "(Ts, " + Conv + ");");
    line("      break;");
  }
  line("    default:");
  line("      tesslaNativeRecordError(I, \"unknown input index\");");
  line("      return 0;");
  line("    }");
  line("  } catch (const tessla::cgen::FailError &E) {");
  line("    tesslaNativeRecordError(I, E.Message);");
  line("    return 0;");
  line("  }");
  line("  return 1;");
  line("}");
  line();
  line("int32_t tessla_native_finish(void *Inst, int64_t Horizon,");
  line("                             int32_t HasHorizon) {");
  line("  auto *I = static_cast<TesslaNativeInstance *>(Inst);");
  line("  if (I->Failed)");
  line("    return 0;");
  line("  I->M.cgenClearContext();");
  line("  try {");
  line("    if (HasHorizon)");
  line("      I->M.finish(Horizon);");
  line("    else");
  line("      I->M.finish();");
  line("  } catch (const tessla::cgen::FailError &E) {");
  line("    tesslaNativeRecordError(I, E.Message);");
  line("    return 0;");
  line("  }");
  line("  return 1;");
  line("}");
  line();
  line("const char *tessla_native_error(void *Inst) {");
  line("  auto *I = static_cast<TesslaNativeInstance *>(Inst);");
  line("  return I->Failed ? I->Error.c_str() : nullptr;");
  line("}");
  line();
  line("uint64_t tessla_native_num_outputs(void *Inst) {");
  line("  return static_cast<TesslaNativeInstance *>(Inst)");
  line("      ->M.cgenNumOutputs();");
  line("}");
  line();
  line("void tessla_native_destroy(void *Inst) {");
  line("  delete static_cast<TesslaNativeInstance *>(Inst);");
  line("}");
  line();
  line("} // extern \"C\"");
}

} // namespace

std::optional<std::string>
tessla::emitCppMonitor(const Program &P, const CppEmitterOptions &Opts,
                       DiagnosticEngine &Diags) {
  return Emitter(P, Opts, Diags).run();
}
