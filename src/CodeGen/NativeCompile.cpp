//===- CodeGen/NativeCompile.cpp --------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"

#include "tessla/CodeGen/CppEmitter.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/TraceIO.h"
#include "tessla/Support/Format.h"

#include <cstdlib>
#include <dlfcn.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#include <unordered_map>

using namespace tessla;
namespace fs = std::filesystem;

// Baked in by src/CMakeLists.txt so a freshly built tree can compile
// generated monitors without any environment setup.
#ifndef TESSLA_NATIVE_CXX_DEFAULT
#define TESSLA_NATIVE_CXX_DEFAULT "c++"
#endif
#ifndef TESSLA_NATIVE_INCLUDE_DIR
#define TESSLA_NATIVE_INCLUDE_DIR ""
#endif

namespace {

std::string envOr(const char *Name, std::string Fallback) {
  if (const char *V = std::getenv(Name); V && *V)
    return V;
  return Fallback;
}

std::string compilerFor(const NativeCompileOptions &Opts) {
  if (!Opts.Compiler.empty())
    return Opts.Compiler;
  return envOr("TESSLA_NATIVE_CXX", TESSLA_NATIVE_CXX_DEFAULT);
}

std::string includeDirFor() {
  return envOr("TESSLA_NATIVE_INCLUDE", TESSLA_NATIVE_INCLUDE_DIR);
}

std::string cacheDirFor(const NativeCompileOptions &Opts) {
  if (!Opts.CacheDir.empty())
    return Opts.CacheDir;
  std::string Tmp = envOr("TMPDIR", "/tmp");
  return envOr("TESSLA_NATIVE_CACHE_DIR", Tmp + "/tessla-native-cache");
}

/// The Program checksum: FNV-1a-64 over the deterministic .tpb bytes —
/// the same stamp the shim bakes into tessla_native_checksum().
uint64_t programChecksum(const Program &P) {
  std::vector<uint8_t> Bytes = serializeProgram(P);
  return tpbChecksum(Bytes.data(), Bytes.size());
}

/// The cache key additionally salts in everything that changes the
/// produced binary without changing the Program.
uint64_t cacheKey(uint64_t Checksum, const NativeCompileOptions &Opts) {
  std::string Salt = formatString("%llu|abi%lld|%s|%s",
                                  static_cast<unsigned long long>(Checksum),
                                  static_cast<long long>(NativeShimAbiVersion),
                                  compilerFor(Opts).c_str(),
                                  Opts.ExtraFlags.c_str());
  return tpbChecksum(reinterpret_cast<const uint8_t *>(Salt.data()),
                     Salt.size());
}

std::string cachePath(const Program &P, const NativeCompileOptions &Opts) {
  return cacheDirFor(Opts) +
         formatString("/tessla-native-%016llx.so",
                      static_cast<unsigned long long>(
                          cacheKey(programChecksum(P), Opts)));
}

} // namespace

std::shared_ptr<NativeMonitorLibrary>
NativeMonitorLibrary::open(const std::string &Path, uint64_t WantChecksum,
                           std::string &ErrorOut) {
  void *H = dlopen(Path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    ErrorOut = formatString("dlopen failed: %s", dlerror());
    return nullptr;
  }
  // Deleter-based shared_ptr so every early-return path dlcloses.
  auto Lib = std::shared_ptr<NativeMonitorLibrary>(
      new NativeMonitorLibrary(), [](NativeMonitorLibrary *L) { delete L; });
  Lib->Handle = H;
  Lib->Path = Path;

  auto Resolve = [&](const char *Sym) -> void * {
    return dlsym(H, Sym);
  };
  auto *AbiFn =
      reinterpret_cast<int64_t (*)()>(Resolve("tessla_native_abi"));
  auto *ChecksumFn =
      reinterpret_cast<uint64_t (*)()>(Resolve("tessla_native_checksum"));
  Lib->create = reinterpret_cast<decltype(Lib->create)>(
      Resolve("tessla_native_create"));
  Lib->feed =
      reinterpret_cast<decltype(Lib->feed)>(Resolve("tessla_native_feed"));
  Lib->finish = reinterpret_cast<decltype(Lib->finish)>(
      Resolve("tessla_native_finish"));
  Lib->error = reinterpret_cast<decltype(Lib->error)>(
      Resolve("tessla_native_error"));
  Lib->numOutputs = reinterpret_cast<decltype(Lib->numOutputs)>(
      Resolve("tessla_native_num_outputs"));
  Lib->destroy = reinterpret_cast<decltype(Lib->destroy)>(
      Resolve("tessla_native_destroy"));
  Lib->numInputs = reinterpret_cast<decltype(Lib->numInputs)>(
      Resolve("tessla_native_num_inputs"));
  Lib->inputName = reinterpret_cast<decltype(Lib->inputName)>(
      Resolve("tessla_native_input_name"));

  if (!AbiFn || !ChecksumFn || !Lib->create || !Lib->feed || !Lib->finish ||
      !Lib->error || !Lib->numOutputs || !Lib->destroy || !Lib->numInputs ||
      !Lib->inputName) {
    ErrorOut = "missing tessla_native_* entry points";
    return nullptr;
  }
  if (AbiFn() != NativeShimAbiVersion) {
    ErrorOut = formatString("shim ABI mismatch: library has v%lld, "
                            "loader wants v%lld",
                            static_cast<long long>(AbiFn()),
                            static_cast<long long>(NativeShimAbiVersion));
    return nullptr;
  }
  if (ChecksumFn() != WantChecksum) {
    ErrorOut = formatString(
        "program checksum mismatch: library stamped %016llx, "
        "program is %016llx",
        static_cast<unsigned long long>(ChecksumFn()),
        static_cast<unsigned long long>(WantChecksum));
    return nullptr;
  }
  Lib->Checksum = WantChecksum;
  return Lib;
}

namespace {

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Emit + compile into the cache slot. Returns true on success.
bool buildInto(const Program &P, const NativeCompileOptions &Opts,
               uint64_t Checksum, const std::string &Target,
               std::string &ErrorOut) {
  std::string Inc = includeDirFor();
  if (Inc.empty() || !fs::exists(Inc + "/tessla/CodeGen/RuntimeSupport.h")) {
    ErrorOut = formatString(
        "runtime-support headers not found under '%s' (set "
        "TESSLA_NATIVE_INCLUDE to the repository's include/ directory)",
        Inc.c_str());
    return false;
  }

  CppEmitterOptions EmitOpts;
  EmitOpts.ClassName = "TesslaNativeMonitor";
  EmitOpts.EmitNativeShim = true;
  EmitOpts.ShimChecksum = Checksum;
  DiagnosticEngine Diags;
  std::optional<std::string> Source = emitCppMonitor(P, EmitOpts, Diags);
  if (!Source) {
    ErrorOut = "the C++ backend does not support this program";
    for (const Diagnostic &D : Diags.diagnostics())
      ErrorOut += "; " + D.Message;
    return false;
  }

  std::error_code Ec;
  fs::create_directories(fs::path(Target).parent_path(), Ec);
  if (Ec) {
    ErrorOut = "cannot create cache directory: " + Ec.message();
    return false;
  }

  // Hermetic scratch directory next to the cache slot so the final
  // rename() stays on one filesystem (atomic publish).
  std::string Template =
      (fs::path(Target).parent_path() / "build-XXXXXX").string();
  std::vector<char> Dir(Template.begin(), Template.end());
  Dir.push_back('\0');
  if (!mkdtemp(Dir.data())) {
    ErrorOut = "mkdtemp failed for the native build directory";
    return false;
  }
  std::string Work(Dir.data());
  auto Cleanup = [&] { fs::remove_all(Work, Ec); };

  std::string Src = Work + "/monitor.cpp";
  std::string Obj = Work + "/monitor.so";
  std::string ErrFile = Work + "/compile.err";
  {
    std::ofstream Out(Src);
    Out << *Source;
    if (!Out) {
      ErrorOut = "cannot write the generated source";
      Cleanup();
      return false;
    }
  }

  std::string Cmd = compilerFor(Opts) +
                    " -std=c++20 -O2 -fPIC -shared"
                    " -I'" + Inc + "'"
                    " '" + Src + "' -o '" + Obj + "'" +
                    (Opts.ExtraFlags.empty() ? "" : " " + Opts.ExtraFlags) +
                    " 2>'" + ErrFile + "'";
  int Rc = std::system(Cmd.c_str());
  int Exit = (Rc >= 0 && WIFEXITED(Rc)) ? WEXITSTATUS(Rc) : -1;
  if (Exit != 0) {
    std::string Stderr = readWholeFile(ErrFile);
    if (Stderr.size() > 800)
      Stderr = Stderr.substr(0, 800) + "...";
    if (Exit == 127)
      ErrorOut = formatString("native compiler '%s' not found",
                              compilerFor(Opts).c_str());
    else
      ErrorOut = formatString("native compiler '%s' failed (exit %d): %s",
                              compilerFor(Opts).c_str(), Exit,
                              Stderr.c_str());
    Cleanup();
    return false;
  }

  fs::rename(Obj, Target, Ec);
  if (Ec) {
    ErrorOut = "cannot publish the native library: " + Ec.message();
    Cleanup();
    return false;
  }
  Cleanup();
  return true;
}

/// The native ShardEngine: one shim instance per lane, all Monitor::feed
/// validation re-run host-side (the generated feed keeps only a weak
/// ordering backstop), outputs lifted back into Values via
/// parseValueText so downstream comparison and printing are engine-
/// agnostic.
class NativeShardEngine final : public ShardEngine {
public:
  NativeShardEngine(std::shared_ptr<NativeMonitorLibrary> Lib,
                    const Program &Prog, bool CollectOutputs)
      : Lib(std::move(Lib)), Prog(Prog), CollectOutputs(CollectOutputs) {
    const Spec &S = Prog.spec();
    const std::vector<StreamId> &Inputs = S.inputs();
    for (size_t I = 0; I != Inputs.size(); ++I)
      InputIndex[Inputs[I]] = static_cast<int32_t>(I);
    for (const OutputSlot &O : Prog.outputs())
      OutIdOf[S.stream(O.Id).Name] = O.Id;
  }

  ~NativeShardEngine() override {
    // Instances must die before the library (shared_ptr member order
    // alone is not enough: destroy() lives inside the .so).
    for (auto &Lane : Lanes)
      if (Lane->Inst)
        Lib->destroy(Lane->Inst);
    Lanes.clear();
  }

  unsigned addLane(SessionId Session) override {
    unsigned L;
    if (!FreeLanes.empty()) {
      L = FreeLanes.back();
      FreeLanes.pop_back();
      *Lanes[L] = LaneData();
    } else {
      L = static_cast<unsigned>(Lanes.size());
      Lanes.push_back(std::make_unique<LaneData>());
    }
    LaneData &D = *Lanes[L];
    D.Owner = this;
    D.Session = Session;
    D.Present.assign(Prog.numValueSlots() + 1, 0);
    D.Inst = Lib->create(CollectOutputs ? &NativeShardEngine::onOutput
                                        : nullptr,
                         &D);
    D.Live = true;
    ++NumLive;
    return L;
  }

  bool feed(unsigned Lane, StreamId Input, Time Ts, Value V) override {
    LaneData &D = *Lanes[Lane];
    // Monitor::feed's validation, in its exact order and wording; the
    // shared object only flushes and applies.
    if (D.Failed)
      return false;
    if (EngineFinished)
      return fail(D, "feed() after finish()");
    SlotId Slot = Prog.valueSlot(Input);
    if (Ts < 0)
      return failAt(D, Ts, Input, "timestamps must be non-negative");
    if (Ts < D.PendingTs || (D.CalcDone && Ts == D.PendingTs))
      return failAt(D, Ts, Input,
                    "input events must arrive in timestamp order");
    bool Advance = Ts > D.PendingTs;
    if (!Advance && D.Present[Slot])
      return failAt(D, Ts, Input,
                    "two events on one stream at the same timestamp");
    if (!callFeed(D, Input, Ts, V))
      return false;
    if (Advance) {
      D.PendingTs = Ts;
      D.CalcDone = false;
      std::fill(D.Present.begin(), D.Present.end(), 0);
    }
    D.Present[Slot] = 1;
    ++D.NumFed;
    return true;
  }

  void pump() override {} // eager: the shim applies records at feed()

  void finishAll(std::optional<Time> Horizon) override {
    for (auto &LanePtr : Lanes) {
      LaneData &D = *LanePtr;
      if (!D.Live || D.Failed)
        continue;
      int32_t Ok = Lib->finish(D.Inst, Horizon ? *Horizon : 0,
                               Horizon ? 1 : 0);
      if (!Ok)
        takeNativeError(D);
      else
        checkCallback(D);
    }
    EngineFinished = true;
  }

  SessionId laneSession(unsigned Lane) const override {
    return Lanes[Lane]->Session;
  }
  bool laneFailed(unsigned Lane) const override {
    return Lanes[Lane]->Failed;
  }
  const std::string &laneError(unsigned Lane) const override {
    return Lanes[Lane]->Error;
  }
  uint64_t laneInputEvents(unsigned Lane) const override {
    return Lanes[Lane]->NumFed;
  }
  uint64_t laneOutputEvents(unsigned Lane) const override {
    return Lib->numOutputs(Lanes[Lane]->Inst);
  }
  bool laneIdle(unsigned) const override { return true; }

  std::vector<OutputEvent> takeLaneOutputs(unsigned Lane) override {
    return std::move(Lanes[Lane]->Outputs);
  }

  size_t laneCount() const override { return NumLive; }
  const char *name() const override { return "native"; }

private:
  struct LaneData {
    NativeShardEngine *Owner = nullptr;
    void *Inst = nullptr;
    SessionId Session = 0;
    Time PendingTs = 0;
    bool CalcDone = false;
    bool Failed = false;
    bool Live = false;
    std::string Error;
    std::string CallbackError;
    uint64_t NumFed = 0;
    std::vector<char> Present; // duplicate-event mirror, per value slot
    std::vector<OutputEvent> Outputs;
  };

  // Destruction order: Lanes (and their instances) are torn down in the
  // destructor body above, strictly before this handle can drop the
  // shared object.
  std::shared_ptr<NativeMonitorLibrary> Lib;
  const Program &Prog;
  const bool CollectOutputs;
  std::unordered_map<StreamId, int32_t> InputIndex;
  std::unordered_map<std::string, StreamId> OutIdOf;
  std::vector<std::unique_ptr<LaneData>> Lanes;
  std::vector<unsigned> FreeLanes;
  size_t NumLive = 0;
  bool EngineFinished = false;

  static void onOutput(void *Ctx, int64_t Ts, const char *Stream,
                       const char *ValueText) {
    auto *D = static_cast<LaneData *>(Ctx);
    auto It = D->Owner->OutIdOf.find(Stream);
    std::optional<Value> V = parseValueText(ValueText);
    if (It == D->Owner->OutIdOf.end() || !V) {
      if (D->CallbackError.empty())
        D->CallbackError = formatString(
            "native output '%s = %s' does not lift back into a value",
            Stream, ValueText);
      return;
    }
    D->Outputs.push_back({Ts, It->second, std::move(*V)});
  }

  bool fail(LaneData &D, std::string Message) {
    D.Failed = true;
    D.Error = std::move(Message);
    return false;
  }
  bool failAt(LaneData &D, Time Ts, StreamId Id,
              const std::string &Message) {
    return fail(D, formatString("at t=%lld, stream '%s': %s",
                                static_cast<long long>(Ts),
                                Prog.spec().stream(Id).Name.c_str(),
                                Message.c_str()));
  }
  void takeNativeError(LaneData &D) {
    const char *Err = Lib->error(D.Inst);
    D.Failed = true;
    D.Error = Err ? Err : "native monitor failed without a message";
  }
  /// Output lifting runs inside the native call; surface its failure
  /// only after the call returns.
  bool checkCallback(LaneData &D) {
    if (D.CallbackError.empty())
      return true;
    return fail(D, std::move(D.CallbackError));
  }

  bool callFeed(LaneData &D, StreamId Input, Time Ts, const Value &V) {
    int64_t IntV = 0;
    double FloatV = 0;
    const char *StrV = nullptr;
    int32_t BoolV = 0;
    switch (V.kind()) {
    case Value::Kind::Int:
      IntV = V.getInt();
      break;
    case Value::Kind::Float:
      FloatV = V.getFloat();
      break;
    case Value::Kind::Bool:
      BoolV = V.getBool() ? 1 : 0;
      break;
    case Value::Kind::String:
      StrV = V.getString().c_str();
      break;
    default:
      break; // Unit carries no payload; aggregates fail emission
    }
    int32_t Ok = Lib->feed(D.Inst, InputIndex.at(Input), Ts, IntV, FloatV,
                           StrV, BoolV);
    if (!Ok) {
      takeNativeError(D);
      return false;
    }
    return checkCallback(D);
  }
};

} // namespace

NativeMonitorLibrary::~NativeMonitorLibrary() {
  if (Handle)
    dlclose(Handle);
}

std::string tessla::nativeCachePathFor(const Program &P,
                                       const NativeCompileOptions &Opts) {
  return cachePath(P, Opts);
}

std::shared_ptr<NativeMonitorLibrary>
tessla::compileNative(const Program &P, const NativeCompileOptions &Opts,
                      std::string &ErrorOut) {
  ErrorOut.clear();
  uint64_t Checksum = programChecksum(P);
  std::string Target = cachePath(P, Opts);

  if (!Opts.Force && fs::exists(Target)) {
    std::string CacheErr;
    if (auto Lib = NativeMonitorLibrary::open(Target, Checksum, CacheErr))
      return Lib;
    // Stale or corrupt cache entry (failed dlopen, wrong stamp): drop
    // it and rebuild once.
    std::error_code Ec;
    fs::remove(Target, Ec);
  }

  if (!buildInto(P, Opts, Checksum, Target, ErrorOut))
    return nullptr;
  auto Lib = NativeMonitorLibrary::open(Target, Checksum, ErrorOut);
  if (!Lib)
    ErrorOut = "freshly built native library is unusable: " + ErrorOut;
  return Lib;
}

EngineFactory
tessla::makeNativeEngineFactory(std::shared_ptr<NativeMonitorLibrary> Lib) {
  if (!Lib)
    return nullptr;
  return [Lib](const Program &Prog, bool CollectOutputs) {
    return std::unique_ptr<ShardEngine>(
        new NativeShardEngine(Lib, Prog, CollectOutputs));
  };
}

EngineFactory
tessla::makeNativeEngineFactory(const Program &P,
                                const NativeCompileOptions &Opts,
                                std::string &ErrorOut) {
  return makeNativeEngineFactory(compileNative(P, Opts, ErrorOut));
}
