//===- ADT/GraphAlgos.cpp ---------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/GraphAlgos.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace tessla;

bool tessla::topologicalSort(const Adjacency &Adj,
                             std::vector<uint32_t> &Order) {
  uint32_t N = static_cast<uint32_t>(Adj.size());
  Order.clear();
  Order.reserve(N);

  std::vector<uint32_t> InDegree(N, 0);
  for (const auto &Succs : Adj)
    for (uint32_t V : Succs)
      ++InDegree[V];

  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> Ready;
  for (uint32_t U = 0; U != N; ++U)
    if (InDegree[U] == 0)
      Ready.push(U);

  while (!Ready.empty()) {
    uint32_t U = Ready.top();
    Ready.pop();
    Order.push_back(U);
    for (uint32_t V : Adj[U])
      if (--InDegree[V] == 0)
        Ready.push(V);
  }
  return Order.size() == N;
}

std::vector<uint32_t> tessla::findCycle(const Adjacency &Adj) {
  uint32_t N = static_cast<uint32_t>(Adj.size());
  // 0 = white, 1 = on stack (gray), 2 = done (black).
  std::vector<uint8_t> Color(N, 0);
  // DFS stack of (node, next successor index). Iterative to survive deep
  // graphs.
  std::vector<std::pair<uint32_t, size_t>> Stack;
  std::vector<uint32_t> Path; // gray nodes in stack order

  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Color[Root] != 0)
      continue;
    Stack.push_back({Root, 0});
    Color[Root] = 1;
    Path.push_back(Root);
    while (!Stack.empty()) {
      auto &[U, NextIdx] = Stack.back();
      if (NextIdx == Adj[U].size()) {
        Color[U] = 2;
        Path.pop_back();
        Stack.pop_back();
        continue;
      }
      uint32_t V = Adj[U][NextIdx++];
      if (Color[V] == 1) {
        // Found a back edge U -> V; the cycle is the path suffix from V.
        auto It = std::find(Path.begin(), Path.end(), V);
        assert(It != Path.end() && "gray node must be on path");
        return std::vector<uint32_t>(It, Path.end());
      }
      if (Color[V] == 0) {
        Color[V] = 1;
        Path.push_back(V);
        Stack.push_back({V, 0});
      }
    }
  }
  return {};
}

std::vector<std::vector<uint32_t>>
tessla::stronglyConnectedComponents(const Adjacency &Adj) {
  uint32_t N = static_cast<uint32_t>(Adj.size());
  constexpr uint32_t Undef = ~0u;
  std::vector<uint32_t> Index(N, Undef), LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> TarjanStack;
  std::vector<std::vector<uint32_t>> Components;
  uint32_t NextIndex = 0;

  // Iterative Tarjan: frames of (node, next successor index).
  std::vector<std::pair<uint32_t, size_t>> Frames;
  for (uint32_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != Undef)
      continue;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      auto &[U, NextIdx] = Frames.back();
      if (NextIdx == 0) {
        Index[U] = LowLink[U] = NextIndex++;
        TarjanStack.push_back(U);
        OnStack[U] = true;
      }
      bool Recursed = false;
      while (NextIdx < Adj[U].size()) {
        uint32_t V = Adj[U][NextIdx++];
        if (Index[V] == Undef) {
          Frames.push_back({V, 0});
          Recursed = true;
          break;
        }
        if (OnStack[V])
          LowLink[U] = std::min(LowLink[U], Index[V]);
      }
      if (Recursed)
        continue;
      if (LowLink[U] == Index[U]) {
        std::vector<uint32_t> Component;
        for (;;) {
          uint32_t W = TarjanStack.back();
          TarjanStack.pop_back();
          OnStack[W] = false;
          Component.push_back(W);
          if (W == U)
            break;
        }
        std::sort(Component.begin(), Component.end());
        Components.push_back(std::move(Component));
      }
      uint32_t Finished = U;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().first] =
            std::min(LowLink[Frames.back().first], LowLink[Finished]);
    }
  }
  return Components;
}

std::vector<bool> tessla::reachableFrom(const Adjacency &Adj, uint32_t Start) {
  std::vector<bool> Seen(Adj.size(), false);
  std::vector<uint32_t> Worklist{Start};
  Seen[Start] = true;
  while (!Worklist.empty()) {
    uint32_t U = Worklist.back();
    Worklist.pop_back();
    for (uint32_t V : Adj[U])
      if (!Seen[V]) {
        Seen[V] = true;
        Worklist.push_back(V);
      }
  }
  return Seen;
}

Adjacency tessla::reverseGraph(const Adjacency &Adj) {
  Adjacency Rev(Adj.size());
  for (uint32_t U = 0, N = static_cast<uint32_t>(Adj.size()); U != N; ++U)
    for (uint32_t V : Adj[U])
      Rev[V].push_back(U);
  return Rev;
}
