//===- ADT/UnionFind.cpp ----------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tessla/ADT/UnionFind.h"

#include <cassert>

using namespace tessla;

void UnionFind::grow(uint32_t NumElements) {
  uint32_t Old = size();
  if (NumElements <= Old)
    return;
  Parent.resize(NumElements);
  Size.resize(NumElements, 1);
  for (uint32_t I = Old; I != NumElements; ++I)
    Parent[I] = I;
  NumSets += NumElements - Old;
}

uint32_t UnionFind::find(uint32_t X) const {
  assert(X < Parent.size() && "element out of range");
  uint32_t Root = X;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[X] != Root) {
    uint32_t Next = Parent[X];
    Parent[X] = Root;
    X = Next;
  }
  return Root;
}

uint32_t UnionFind::unite(uint32_t A, uint32_t B) {
  uint32_t RA = find(A), RB = find(B);
  if (RA == RB)
    return RA;
  // Union by size, tie broken toward the smaller index for determinism.
  if (Size[RA] < Size[RB] || (Size[RA] == Size[RB] && RB < RA))
    std::swap(RA, RB);
  Parent[RB] = RA;
  Size[RA] += Size[RB];
  --NumSets;
  return RA;
}

std::vector<std::vector<uint32_t>> UnionFind::groups() const {
  std::vector<std::vector<uint32_t>> ByRoot(size());
  for (uint32_t I = 0, E = size(); I != E; ++I)
    ByRoot[find(I)].push_back(I);
  std::vector<std::vector<uint32_t>> Out;
  for (auto &G : ByRoot)
    if (!G.empty())
      Out.push_back(std::move(G));
  return Out;
}
