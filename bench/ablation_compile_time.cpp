//===- bench/ablation_compile_time.cpp --------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Compile-time ablation (§IV-E2, §VI): the paper notes that despite the
/// coNP-hard implication checks and the NP-complete ordering problem,
/// "for typical specifications our implementation showed no unusual long
/// compilation time" (< 30 s for every evaluated spec). This benchmark
/// measures the analysis pipeline over
///
///  * every bundled evaluation specification, reporting wall time plus
///    how many implication queries the syntactic fast path answered vs.
///    full SAT, and
///  * synthetic accumulator chains of growing width, comparing the exact
///    branch-and-bound edge removal against the greedy fallback.
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/Pipeline.h"
#include "tessla/Eval/Workloads.h"
#include "tessla/Lang/Builder.h"
#include "tessla/Lang/TypeCheck.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace tessla;

namespace {

double seconds(std::function<void()> Fn) {
  auto Start = std::chrono::steady_clock::now();
  Fn();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

void analyzeAndReport(const char *Name, Spec S) {
  UsageGraph G(S);
  TriggerAnalysis Triggers(S);
  AliasAnalysis Aliases(G, Triggers);
  MutabilityResult Result;
  double Time = seconds([&] {
    Result = computeMutability(G, Triggers, Aliases, MutabilityOptions());
  });
  std::printf("%-28s %8u %9u %10.4f %11llu %8llu\n", Name, S.numStreams(),
              Result.mutableCount(), Time,
              static_cast<unsigned long long>(
                  Triggers.implicationFastPathHits()),
              static_cast<unsigned long long>(
                  Triggers.implicationSatQueries()));
}

/// Builds a specification whose aliasing analysis must discharge real
/// triggering implications: parallel last-chains off a shared source
/// with nested trigger hierarchies (the Fig. 5 pattern at depth
/// \p Depth). Each chain level k is triggered by the union of inputs
/// 0..k, so proving chain k+1 behind chain k requires the implication
/// ev'(t_k) -> ev'(t_{k+1}).
Spec lastChainSpec(unsigned Depth) {
  SpecBuilder B;
  std::vector<StreamId> Inputs;
  for (unsigned I = 0; I != Depth + 1; ++I)
    Inputs.push_back(B.input("in" + std::to_string(I), Type::integer()));
  // Trigger hierarchy: trig_k = in_0 | ... | in_k.
  std::vector<StreamId> Triggers{Inputs[0]};
  for (unsigned I = 1; I != Depth + 1; ++I)
    Triggers.push_back(B.lift("trig" + std::to_string(I),
                              BuiltinId::Merge,
                              {Triggers.back(), Inputs[I]}));
  StreamId Unit = B.unit("u");
  // Fresh set per event of the widest trigger.
  StreamId UK = B.last("uk", Unit, Triggers.back());
  StreamId C = B.lift("c", BuiltinId::SetEmpty, {UK});
  StreamId M = B.lift("m", BuiltinId::Merge,
                      {C, B.lift("e", BuiltinId::SetEmpty, {Unit})});
  // The long chain: lasts triggered by narrower and narrower sets.
  StreamId Chain = M;
  for (unsigned I = 0; I != Depth; ++I)
    Chain = B.last("chain" + std::to_string(I), Chain,
                   Triggers[Depth - 1 - I]);
  // A parallel short chain plus a write to force alias queries.
  StreamId Short = B.last("short0", M, Triggers.back());
  StreamId Written = B.lift("w", BuiltinId::SetAdd, {Chain, Inputs[0]});
  B.markOutput(B.lift("probe", BuiltinId::SetContains,
                      {Short, Inputs[0]}));
  B.markOutput(Written);
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  if (Diags.hasErrors())
    std::abort();
  DiagnosticEngine TDiags;
  if (!typecheck(S, TDiags))
    std::abort();
  return S;
}

/// Builds a specification with \p Width independent set accumulators,
/// each read by one probe — Width families, Width read-before-write
/// constraints.
Spec accumulatorChain(unsigned Width) {
  SpecBuilder B;
  StreamId In = B.input("i", Type::integer());
  StreamId Unit = B.unit("u");
  for (unsigned I = 0; I != Width; ++I) {
    std::string N = std::to_string(I);
    StreamId Y = B.declare("y" + N);
    StreamId E = B.lift("e" + N, BuiltinId::SetEmpty, {Unit});
    StreamId M = B.lift("m" + N, BuiltinId::Merge, {Y, E});
    StreamId Prev = B.last("prev" + N, M, In);
    B.defineLift(Y, BuiltinId::SetAdd, {Prev, In});
    StreamId Probe =
        B.lift("probe" + N, BuiltinId::SetContains, {Prev, In});
    B.markOutput(Probe);
  }
  DiagnosticEngine Diags;
  Spec S = B.finish(Diags);
  if (Diags.hasErrors())
    std::abort();
  DiagnosticEngine TDiags;
  if (!typecheck(S, TDiags))
    std::abort();
  return S;
}

} // namespace

int main() {
  std::printf("Compile-time ablation — analysis pipeline\n\n");
  std::printf("%-28s %8s %9s %10s %11s %8s\n", "specification", "streams",
              "mutable", "time [s]", "impl-fast", "impl-SAT");
  analyzeAndReport("Figure 1", workloads::figure1());
  analyzeAndReport("Figure 4 upper", workloads::figure4Upper());
  analyzeAndReport("Figure 4 lower", workloads::figure4Lower());
  analyzeAndReport("Seen Set", workloads::seenSet());
  analyzeAndReport("Map Window (200)", workloads::mapWindow(200));
  analyzeAndReport("Queue Window (200)", workloads::queueWindow(200));
  analyzeAndReport("DBAccessConstraint",
                   workloads::dbAccessConstraint());
  analyzeAndReport("DBTimeConstraint", workloads::dbTimeConstraint());
  analyzeAndReport("PeakDetection (30)", workloads::peakDetection(30));
  analyzeAndReport("SpectrumCalculation",
                   workloads::spectrumCalculation());

  std::printf("\nImplication-heavy parallel last-chains (SAT-backed "
              "triggering checks, Fig. 5 pattern):\n");
  std::printf("%-28s %8s %9s %10s %11s %8s\n", "specification", "streams",
              "mutable", "time [s]", "impl-fast", "impl-SAT");
  for (unsigned Depth : {2u, 4u, 8u, 16u}) {
    std::string Name = "last-chain depth " + std::to_string(Depth);
    analyzeAndReport(Name.c_str(), lastChainSpec(Depth));
  }

  std::printf("\nStep-4 exact branch-and-bound vs greedy on synthetic "
              "accumulator fans:\n");
  std::printf("%8s %8s %12s %12s %14s\n", "families", "streams",
              "exact [s]", "greedy [s]", "mutable e/g");
  for (unsigned Width : {2u, 8u, 16u, 24u, 48u}) {
    Spec S = accumulatorChain(Width);
    UsageGraph G(S);
    TriggerAnalysis Triggers(S);
    AliasAnalysis Aliases(G, Triggers);
    MutabilityOptions Exact;
    Exact.ExactEdgeRemoval = true;
    Exact.MaxExactCandidates = 64;
    MutabilityOptions Greedy;
    Greedy.ExactEdgeRemoval = false;
    MutabilityResult RExact, RGreedy;
    double TE = seconds([&] {
      RExact = computeMutability(G, Triggers, Aliases, Exact);
    });
    double TG = seconds([&] {
      RGreedy = computeMutability(G, Triggers, Aliases, Greedy);
    });
    std::printf("%8u %8u %12.4f %12.4f %8u/%u\n", Width, S.numStreams(),
                TE, TG, RExact.mutableCount(), RGreedy.mutableCount());
  }
  std::printf("\npaper observation (§VI): compilation time is "
              "unproblematic for typical specifications\n");
  return 0;
}
