//===- bench/fig9_synthetic.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 9 (§V-A): speedup of the optimized (mutable) over
/// the non-optimized (persistent) monitors for the Seen Set, Map Window
/// and Queue Window workloads at small (10), medium (200) and large
/// (10,000) data-structure sizes.
///
/// Paper values for comparison (speedups at the longest trace length):
///   Seen Set:     small ~2.1   medium ~3.9   large ~4.9
///   Map Window:   small ~1.5   medium ~2.6   large ~3.3
///   Queue Window: small ~1.5   medium ~1.6   large ~1.8
///
/// Traces: random ints, timestamps 1,2,3,... For the Seen Set the value
/// domain is twice the target size (toggling keeps the stationary set
/// size near half the domain); for the windows the window size is the
/// structure size. The paper ran traces up to 1e9/1e10 events to let the
/// JVM JIT stabilize; ahead-of-time C++ has no warm-up regime, and
/// Fig. 10 shows the speedup is stable from ~1e6 events on, so the
/// default lengths are 2e6 (1e6 for large structures). Scale with
/// TESSLA_BENCH_SCALE, repetitions with TESSLA_BENCH_REPS.
///
/// --native adds the compiled execution tier (CppEmitter -> system
/// compiler -> dlopen, CodeGen/NativeCompile.h) as two extra columns:
/// the native runtime over the optimized Program and its speedup over
/// the interpreter on the same Program (nat/opt). The .so build happens
/// outside the timed region.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstring>

using namespace tessla;
using namespace tessla::bench;

namespace {

struct SizeConfig {
  const char *Label;
  int64_t Size;
  size_t TraceLength;
};

const SizeConfig Sizes[] = {
    {"small (10)", 10, 2000000},
    {"medium (200)", 200, 2000000},
    {"large (10000)", 10000, 1000000},
};

bool NativeAxis = false;

void report(const char *Workload, const SizeConfig &Config,
            const Comparison &C, size_t Events,
            const RunResult *Native) {
  std::printf("%-13s %-14s %10zu %10.3f %10.3f %8.2fx", Workload,
              Config.Label, Events, C.Optimized.Seconds,
              C.Baseline.Seconds, C.speedup());
  if (Native)
    std::printf(" %10.3f %8.2fx", Native->Seconds,
                C.Optimized.Seconds / Native->Seconds);
  std::printf("\n");
  std::fflush(stdout);
}

/// Runs one workload: the paper's optimized-vs-baseline comparison,
/// plus (with --native) the compiled tier over the optimized Program —
/// the same monitor, interpreted vs. dlopen()ed machine code.
void runWorkload(const char *Label, const SizeConfig &Config,
                 const Spec &S, const std::vector<TraceEvent> &Events,
                 unsigned Reps) {
  Comparison C = compare(S, Events, Reps);
  RunResult Native;
  if (NativeAxis) {
    CompileOptions Opts; // optimized, matching C.Optimized
    DiagnosticEngine Diags;
    std::optional<Program> PlanOpt = compileSpec(S, Opts, Diags);
    if (!PlanOpt) {
      std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
      std::exit(1);
    }
    std::string Error;
    auto Lib = compileNative(*PlanOpt, NativeCompileOptions(), Error);
    if (!Lib) {
      std::fprintf(stderr, "native tier unavailable: %s\n",
                   Error.c_str());
      std::exit(1);
    }
    Native = medianNativeRun(*PlanOpt, Lib, Events, Reps);
    if (Native.Failed || Native.Outputs != C.Optimized.Outputs) {
      std::fprintf(stderr, "native output mismatch (%llu vs %llu)!\n",
                   static_cast<unsigned long long>(Native.Outputs),
                   static_cast<unsigned long long>(C.Optimized.Outputs));
      std::exit(1);
    }
  }
  report(Label, Config, C, Events.size(), NativeAxis ? &Native : nullptr);
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--native") == 0) {
      NativeAxis = true;
    } else {
      std::fprintf(stderr, "usage: %s [--native]\n", argv[0]);
      return 2;
    }
  }
  unsigned Reps = repetitions();
  std::printf("Figure 9 — synthetic workload speedups "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-13s %-14s %10s %10s %10s %9s", "workload", "size",
              "events", "opt [s]", "base [s]", "speedup");
  if (NativeAxis)
    std::printf(" %10s %9s", "native [s]", "nat/opt");
  std::printf("\n");

  for (const SizeConfig &Config : Sizes) {
    size_t Length = scaled(Config.TraceLength);
    // Seen Set: domain = 2 * size keeps the stationary set near `size`.
    {
      Spec S = workloads::seenSet();
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         2 * Config.Size, 101);
      runWorkload("Seen Set", Config, S, Events, Reps);
    }
    {
      Spec S = workloads::mapWindow(Config.Size);
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         1 << 20, 102);
      runWorkload("Map Window", Config, S, Events, Reps);
    }
    {
      Spec S = workloads::queueWindow(Config.Size);
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         1 << 20, 103);
      runWorkload("Queue Window", Config, S, Events, Reps);
    }
  }
  std::printf("\npaper reference speedups (Fig. 9): Seen Set "
              "2.1/3.9/4.9, Map Window 1.5/2.6/3.3, Queue Window "
              "1.5/1.6/1.8 (small/medium/large)\n");
  return 0;
}
