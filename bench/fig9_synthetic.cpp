//===- bench/fig9_synthetic.cpp ---------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 9 (§V-A): speedup of the optimized (mutable) over
/// the non-optimized (persistent) monitors for the Seen Set, Map Window
/// and Queue Window workloads at small (10), medium (200) and large
/// (10,000) data-structure sizes.
///
/// Paper values for comparison (speedups at the longest trace length):
///   Seen Set:     small ~2.1   medium ~3.9   large ~4.9
///   Map Window:   small ~1.5   medium ~2.6   large ~3.3
///   Queue Window: small ~1.5   medium ~1.6   large ~1.8
///
/// Traces: random ints, timestamps 1,2,3,... For the Seen Set the value
/// domain is twice the target size (toggling keeps the stationary set
/// size near half the domain); for the windows the window size is the
/// structure size. The paper ran traces up to 1e9/1e10 events to let the
/// JVM JIT stabilize; ahead-of-time C++ has no warm-up regime, and
/// Fig. 10 shows the speedup is stable from ~1e6 events on, so the
/// default lengths are 2e6 (1e6 for large structures). Scale with
/// TESSLA_BENCH_SCALE, repetitions with TESSLA_BENCH_REPS.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tessla;
using namespace tessla::bench;

namespace {

struct SizeConfig {
  const char *Label;
  int64_t Size;
  size_t TraceLength;
};

const SizeConfig Sizes[] = {
    {"small (10)", 10, 2000000},
    {"medium (200)", 200, 2000000},
    {"large (10000)", 10000, 1000000},
};

void report(const char *Workload, const SizeConfig &Config,
            const Comparison &C, size_t Events) {
  std::printf("%-13s %-14s %10zu %10.3f %10.3f %8.2fx\n", Workload,
              Config.Label, Events, C.Optimized.Seconds,
              C.Baseline.Seconds, C.speedup());
  std::fflush(stdout);
}

} // namespace

int main() {
  unsigned Reps = repetitions();
  std::printf("Figure 9 — synthetic workload speedups "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-13s %-14s %10s %10s %10s %9s\n", "workload", "size",
              "events", "opt [s]", "base [s]", "speedup");

  for (const SizeConfig &Config : Sizes) {
    size_t Length = scaled(Config.TraceLength);
    // Seen Set: domain = 2 * size keeps the stationary set near `size`.
    {
      Spec S = workloads::seenSet();
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         2 * Config.Size, 101);
      report("Seen Set", Config, compare(S, Events, Reps), Length);
    }
    {
      Spec S = workloads::mapWindow(Config.Size);
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         1 << 20, 102);
      report("Map Window", Config, compare(S, Events, Reps), Length);
    }
    {
      Spec S = workloads::queueWindow(Config.Size);
      auto Events = tracegen::randomInts(*S.lookup("x"), Length,
                                         1 << 20, 103);
      report("Queue Window", Config, compare(S, Events, Reps), Length);
    }
  }
  std::printf("\npaper reference speedups (Fig. 9): Seen Set "
              "2.1/3.9/4.9, Map Window 1.5/2.6/3.3, Queue Window "
              "1.5/1.6/1.8 (small/medium/large)\n");
  return 0;
}
