//===- bench/BenchUtil.h - Benchmark harness helpers ------------*- C++ -*-===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the paper-reproduction benchmark binaries: timed
/// monitor runs (optimized vs. baseline), median-of-N repetition (the
/// paper reports medians over three runs, §V) and table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef TESSLA_BENCH_BENCHUTIL_H
#define TESSLA_BENCH_BENCHUTIL_H

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Eval/Workloads.h"
#include "tessla/Runtime/TraceGen.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace tessla {
namespace bench {

/// Result of one timed monitor run.
struct RunResult {
  double Seconds = 0;
  uint64_t Outputs = 0;
  bool Failed = false;
};

/// Compiles \p S in the given mode and runs \p Events once, timing only
/// the monitoring (not analysis/plan compilation — the paper reports
/// monitor runtimes; compilation is benchmarked separately).
inline RunResult timeMonitor(const Spec &S, bool Optimize,
                             const std::vector<TraceEvent> &Events) {
  CompileOptions Opts;
  Opts.Optimize = Optimize;
  DiagnosticEngine Diags;
  std::optional<Program> PlanOpt = compileSpec(S, Opts, Diags);
  if (!PlanOpt) {
    std::fprintf(stderr, "benchmark compile failed:\n%s",
                 Diags.str().c_str());
    std::exit(1);
  }
  Program &Plan = *PlanOpt;

  Monitor M(Plan);
  RunResult R;
  M.setOutputHandler(
      [&R](Time, StreamId, const Value &) { ++R.Outputs; });
  auto Start = std::chrono::steady_clock::now();
  for (const auto &[Id, Ts, V] : Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish();
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  if (M.failed()) {
    std::fprintf(stderr, "benchmark monitor failed: %s\n",
                 M.errorMessage().c_str());
    R.Failed = true;
  }
  return R;
}

/// Median-of-N timed runs (sanity-checks that all repetitions see the
/// same number of outputs).
inline RunResult medianRun(const Spec &S, bool Optimize,
                           const std::vector<TraceEvent> &Events,
                           unsigned Repetitions) {
  std::vector<RunResult> Runs;
  for (unsigned I = 0; I != Repetitions; ++I) {
    Runs.push_back(timeMonitor(S, Optimize, Events));
    if (Runs.back().Failed)
      return Runs.back();
    if (Runs.front().Outputs != Runs.back().Outputs) {
      std::fprintf(stderr, "non-deterministic output count!\n");
      std::exit(1);
    }
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

/// One timed run through the native compiled tier (the .so is built
/// outside the timed region — compileNative() is the benchmarked
/// pipeline's *build* half and is reported by ablation_compile_time).
/// Output events are counted inside the shim, mirroring the
/// interpreter's count-only handler above.
inline RunResult
timeNativeMonitor(const Program &Plan,
                  const std::shared_ptr<NativeMonitorLibrary> &Lib,
                  const std::vector<TraceEvent> &Events) {
  std::unique_ptr<ShardEngine> Engine =
      makeNativeEngineFactory(Lib)(Plan, /*CollectOutputs=*/false);
  unsigned Lane = Engine->addLane(0);
  RunResult R;
  auto Start = std::chrono::steady_clock::now();
  for (const auto &[Id, Ts, V] : Events)
    if (!Engine->feed(Lane, Id, Ts, V))
      break;
  Engine->finishAll();
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  R.Outputs = Engine->laneOutputEvents(Lane);
  if (Engine->laneFailed(Lane)) {
    std::fprintf(stderr, "native benchmark monitor failed: %s\n",
                 Engine->laneError(Lane).c_str());
    R.Failed = true;
  }
  return R;
}

/// Median-of-N native runs over one prebuilt library.
inline RunResult
medianNativeRun(const Program &Plan,
                const std::shared_ptr<NativeMonitorLibrary> &Lib,
                const std::vector<TraceEvent> &Events,
                unsigned Repetitions) {
  std::vector<RunResult> Runs;
  for (unsigned I = 0; I != Repetitions; ++I) {
    Runs.push_back(timeNativeMonitor(Plan, Lib, Events));
    if (Runs.back().Failed)
      return Runs.back();
    if (Runs.front().Outputs != Runs.back().Outputs) {
      std::fprintf(stderr, "non-deterministic native output count!\n");
      std::exit(1);
    }
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

/// One optimized-vs-baseline comparison, the paper's core measurement.
struct Comparison {
  RunResult Optimized;
  RunResult Baseline;
  double speedup() const {
    return Baseline.Seconds / Optimized.Seconds;
  }
};

inline Comparison compare(const Spec &S,
                          const std::vector<TraceEvent> &Events,
                          unsigned Repetitions) {
  Comparison C;
  C.Optimized = medianRun(S, /*Optimize=*/true, Events, Repetitions);
  C.Baseline = medianRun(S, /*Optimize=*/false, Events, Repetitions);
  if (C.Optimized.Outputs != C.Baseline.Outputs) {
    std::fprintf(stderr,
                 "optimized/baseline output mismatch (%llu vs %llu)!\n",
                 static_cast<unsigned long long>(C.Optimized.Outputs),
                 static_cast<unsigned long long>(C.Baseline.Outputs));
    std::exit(1);
  }
  return C;
}

/// Repetition count: paper-style median of 3 by default, overridable via
/// the TESSLA_BENCH_REPS environment variable (e.g. 1 for quick runs).
inline unsigned repetitions() {
  if (const char *Env = std::getenv("TESSLA_BENCH_REPS"))
    return std::max(1, std::atoi(Env));
  return 3;
}

/// Scale factor for trace lengths, overridable via TESSLA_BENCH_SCALE
/// (e.g. 0.1 for smoke runs, 10 for paper-scale patience).
inline double scale() {
  if (const char *Env = std::getenv("TESSLA_BENCH_SCALE"))
    return std::max(0.001, std::atof(Env));
  return 1.0;
}

inline size_t scaled(size_t N) {
  return static_cast<size_t>(static_cast<double>(N) * scale());
}

} // namespace bench
} // namespace tessla

#endif // TESSLA_BENCH_BENCHUTIL_H
