//===- bench/ablation_structures.cpp ----------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Container-level ablation (google-benchmark): persistent structures vs.
/// their mutable counterparts at the paper's three size classes. This
/// substantiates the §V-A explanation of Fig. 9's shape:
///
///  * HAMT updates pay path copying that grows with the structure, so
///    the set/map gap widens with size;
///  * the two-list persistent queue "requires less restructuring after a
///    modification", so its gap stays small — hence Queue Window's
///    flatter speedups.
///
//===----------------------------------------------------------------------===//

#include "tessla/Persistent/HAMT.h"
#include "tessla/Persistent/List.h"
#include "tessla/Persistent/Queue.h"

#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <random>
#include <unordered_map>
#include <unordered_set>

using namespace tessla;

namespace {

std::vector<int64_t> randomValues(size_t Count, int64_t Domain,
                                  uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_int_distribution<int64_t> Dist(0, Domain - 1);
  std::vector<int64_t> Out(Count);
  for (int64_t &V : Out)
    V = Dist(Rng);
  return Out;
}

// --- Seen-Set style toggle workload --------------------------------------

void BM_HamtSetToggle(benchmark::State &State) {
  const int64_t Size = State.range(0);
  auto Values = randomValues(4096, 2 * Size, 1);
  HamtSet<int64_t> S;
  // Pre-populate to the stationary size.
  for (int64_t I = 0; I != Size; ++I)
    S = S.insert(2 * I);
  size_t I = 0;
  for (auto _ : State) {
    int64_t V = Values[I++ % Values.size()];
    S = S.contains(V) ? S.erase(V) : S.insert(V);
    benchmark::DoNotOptimize(S.size());
  }
}
BENCHMARK(BM_HamtSetToggle)->Arg(10)->Arg(200)->Arg(10000);

void BM_StdSetToggle(benchmark::State &State) {
  const int64_t Size = State.range(0);
  auto Values = randomValues(4096, 2 * Size, 1);
  std::unordered_set<int64_t> S;
  for (int64_t I = 0; I != Size; ++I)
    S.insert(2 * I);
  size_t I = 0;
  for (auto _ : State) {
    int64_t V = Values[I++ % Values.size()];
    if (!S.insert(V).second)
      S.erase(V);
    benchmark::DoNotOptimize(S.size());
  }
}
BENCHMARK(BM_StdSetToggle)->Arg(10)->Arg(200)->Arg(10000);

// --- Map-Window style put workload ----------------------------------------

void BM_HamtMapRingPut(benchmark::State &State) {
  const int64_t Size = State.range(0);
  HamtMap<int64_t, int64_t> M;
  for (int64_t I = 0; I != Size; ++I)
    M = M.set(I, I);
  int64_t C = 0;
  for (auto _ : State) {
    M = M.set(C % Size, C);
    ++C;
    benchmark::DoNotOptimize(M.size());
  }
}
BENCHMARK(BM_HamtMapRingPut)->Arg(10)->Arg(200)->Arg(10000);

void BM_StdMapRingPut(benchmark::State &State) {
  const int64_t Size = State.range(0);
  std::unordered_map<int64_t, int64_t> M;
  for (int64_t I = 0; I != Size; ++I)
    M[I] = I;
  int64_t C = 0;
  for (auto _ : State) {
    M[C % Size] = C;
    ++C;
    benchmark::DoNotOptimize(M.size());
  }
}
BENCHMARK(BM_StdMapRingPut)->Arg(10)->Arg(200)->Arg(10000);

// --- Queue-Window style enq/deq workload ----------------------------------

void BM_PQueueWindow(benchmark::State &State) {
  const int64_t Size = State.range(0);
  PQueue<int64_t> Q;
  for (int64_t I = 0; I != Size; ++I)
    Q = Q.enqueue(I);
  int64_t C = 0;
  for (auto _ : State) {
    Q = Q.enqueue(C++);
    benchmark::DoNotOptimize(Q.front());
    Q = Q.dequeue();
  }
}
BENCHMARK(BM_PQueueWindow)->Arg(10)->Arg(200)->Arg(10000);

void BM_StdDequeWindow(benchmark::State &State) {
  const int64_t Size = State.range(0);
  std::deque<int64_t> Q;
  for (int64_t I = 0; I != Size; ++I)
    Q.push_back(I);
  int64_t C = 0;
  for (auto _ : State) {
    Q.push_back(C++);
    benchmark::DoNotOptimize(Q.front());
    Q.pop_front();
  }
}
BENCHMARK(BM_StdDequeWindow)->Arg(10)->Arg(200)->Arg(10000);

// --- Lookup-only comparison ------------------------------------------------

void BM_HamtSetContains(benchmark::State &State) {
  const int64_t Size = State.range(0);
  HamtSet<int64_t> S;
  for (int64_t I = 0; I != Size; ++I)
    S = S.insert(I);
  int64_t C = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.contains(C++ % (2 * Size)));
}
BENCHMARK(BM_HamtSetContains)->Arg(10)->Arg(200)->Arg(10000);

void BM_StdSetContains(benchmark::State &State) {
  const int64_t Size = State.range(0);
  std::unordered_set<int64_t> S;
  for (int64_t I = 0; I != Size; ++I)
    S.insert(I);
  int64_t C = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(S.count(C++ % (2 * Size)));
}
BENCHMARK(BM_StdSetContains)->Arg(10)->Arg(200)->Arg(10000);

// --- refcounting ablation (DESIGN.md decision 4) ---------------------------
//
// Persistent nodes use non-atomic intrusive refcounting instead of
// std::shared_ptr; this pair quantifies the decision on the hottest
// pattern (spine sharing in cons lists, as in the banker's queue).

void BM_RefCntPtrListCons(benchmark::State &State) {
  for (auto _ : State) {
    PList<int64_t> L;
    for (int I = 0; I != 64; ++I)
      L = L.cons(I);
    benchmark::DoNotOptimize(L.size());
  }
}
BENCHMARK(BM_RefCntPtrListCons);

namespace {
/// The same cons list over std::shared_ptr (atomic refcounts).
struct SharedNode {
  int64_t Head;
  std::shared_ptr<SharedNode> Tail;
};
} // namespace

void BM_SharedPtrListCons(benchmark::State &State) {
  for (auto _ : State) {
    std::shared_ptr<SharedNode> L;
    for (int I = 0; I != 64; ++I)
      L = std::make_shared<SharedNode>(SharedNode{I, L});
    benchmark::DoNotOptimize(L.get());
    // Iterative teardown (mirrors PList's node destructor).
    while (L && L.use_count() == 1)
      L = std::move(L->Tail);
  }
}
BENCHMARK(BM_SharedPtrListCons);

} // namespace

BENCHMARK_MAIN();
