//===- bench/fork_scaling.cpp -----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Session-fork scaling: the two claims behind forkSession()'s O(1)
/// contract, measured on the Seen Set workload.
///
///  * Fork latency vs. state size — one session accumulates a set of
///    1e3..1e5 distinct elements, then is forked repeatedly. Under the
///    copy-on-write representation a fork is a handle copy of the
///    lane's slot vectors, so the median latency column must stay flat
///    while the state column grows by orders of magnitude.
///
///  * Resident aggregate memory, N forks vs. N clones — the same fleet
///    state reached by forking one loaded session N-1 times is held
///    against N independent sessions fed the identical trace. The
///    fleet's per-shard accounting walk (ShardStats::AggregateBytes,
///    deduplicated by node identity) prices both: forks share the HAMT
///    spine, clones own N copies of it, so the forked column must stay
///    measurably sublinear in N.
///
/// Knobs: --sizes takes a comma-separated sweep of distinct-element
/// counts, --forks the fork/clone session count;
/// TESSLA_BENCH_REPS the median repetition count for the latency
/// column.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tessla/Runtime/MonitorFleet.h"

#include <cstring>

using namespace tessla;
using namespace tessla::bench;

namespace {

std::vector<size_t> parseList(const char *Text) {
  std::vector<size_t> Out;
  for (const char *P = Text; *P;) {
    char *End = nullptr;
    long N = std::strtol(P, &End, 10);
    if (End == P)
      break;
    Out.push_back(static_cast<size_t>(std::max(1l, N)));
    P = (*End == ',') ? End + 1 : End;
  }
  if (Out.empty())
    Out.push_back(1);
  return Out;
}

/// Feeds \p Session with \p Size distinct integers (one per timestamp)
/// through \p Handle — after the run the session's seen-set holds
/// exactly \p Size elements.
void feedDistinct(ProducerHandle &Handle, SessionId Session, StreamId X,
                  size_t Size) {
  for (size_t I = 0; I != Size; ++I)
    Handle.feed(Session, X, static_cast<Time>(I + 1),
                Value::integer(static_cast<int64_t>(I)));
}

/// One-shard fleet (so the aggregate accounting walk deduplicates
/// across every lane) with output collection off — fork cost must not
/// include copying recorded outputs we never read.
FleetOptions benchOptions() {
  FleetOptions Opts;
  Opts.Shards = 1;
  Opts.CollectOutputs = false;
  return Opts;
}

struct AggStats {
  uint64_t Bytes = 0;
  uint64_t NodesUnique = 0;
  uint64_t NodesShared = 0;
  uint64_t ForkedIn = 0;
};

AggStats aggOf(const FleetStats &Stats) {
  AggStats A;
  for (const ShardStats &S : Stats.Shards) {
    A.Bytes += S.AggregateBytes;
    A.NodesUnique += S.AggregateNodesUnique;
    A.NodesShared += S.AggregateNodesShared;
    A.ForkedIn += S.SessionsForkedIn;
  }
  return A;
}

/// Loads one session to \p Size elements, times \p Forks forkSession()
/// calls (median over all forks), finishes, and returns the fleet's
/// aggregate accounting.
AggStats forkedFleet(const Program &Plan, StreamId X, size_t Size,
                     unsigned Forks, double &MedianForkUs) {
  MonitorFleet Fleet(Plan, benchOptions());
  {
    ProducerHandle Handle = Fleet.producer();
    feedDistinct(Handle, 1, X, Size);
  }
  std::vector<double> Times;
  Times.reserve(Forks);
  for (unsigned I = 0; I != Forks; ++I) {
    std::string Err;
    auto Start = std::chrono::steady_clock::now();
    if (!Fleet.forkSession(1, 1000 + I, &Err)) {
      std::fprintf(stderr, "fork failed: %s\n", Err.c_str());
      std::exit(1);
    }
    auto End = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::micro>(End - Start).count());
  }
  std::sort(Times.begin(), Times.end());
  MedianForkUs = Times[Times.size() / 2];
  Fleet.finish();
  if (Fleet.failed()) {
    std::fprintf(stderr, "forked fleet failed: %s\n",
                 Fleet.errors().front().Message.c_str());
    std::exit(1);
  }
  return aggOf(Fleet.stats());
}

/// The independent baseline: \p Clones sessions each fed the identical
/// \p Size-element trace, no forks.
AggStats clonedFleet(const Program &Plan, StreamId X, size_t Size,
                     unsigned Clones) {
  MonitorFleet Fleet(Plan, benchOptions());
  {
    ProducerHandle Handle = Fleet.producer();
    for (unsigned S = 0; S != Clones; ++S)
      feedDistinct(Handle, 1000 + S, X, Size);
  }
  Fleet.finish();
  if (Fleet.failed()) {
    std::fprintf(stderr, "cloned fleet failed: %s\n",
                 Fleet.errors().front().Message.c_str());
    std::exit(1);
  }
  return aggOf(Fleet.stats());
}

} // namespace

int main(int argc, char **argv) {
  std::vector<size_t> Sizes = {1000, 10000, 100000};
  unsigned Forks = 100;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--sizes") == 0 && I + 1 < argc)
      Sizes = parseList(argv[++I]);
    else if (std::strcmp(argv[I], "--forks") == 0 && I + 1 < argc)
      Forks = std::max(2, std::atoi(argv[++I]));
    else {
      std::fprintf(stderr, "usage: %s [--sizes 1000,10000,100000] "
                           "[--forks N]\n",
                   argv[0]);
      return 2;
    }
  }

  DiagnosticEngine Diags;
  Spec S = workloads::seenSet();
  auto Plan = compileSpec(S, CompileOptions(), Diags);
  if (!Plan) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
    return 1;
  }
  StreamId X = *S.lookup("x");

  std::printf("Session-fork scaling — seen set, %u forks/clones per "
              "row, 1 shard\n\n",
              Forks);
  std::printf("%10s %12s %14s %14s %14s %8s\n", "elements",
              "fork [us]", "forked [KiB]", "cloned [KiB]", "shared nodes",
              "ratio");
  for (size_t Size : Sizes) {
    double MedianForkUs = 0;
    // The forked lane count is Forks sessions total (source + Forks-1
    // forks would undercount by one, so fork Forks times and clone
    // Forks+1 sessions: both fleets end with the same session count).
    AggStats Forked = forkedFleet(*Plan, X, Size, Forks, MedianForkUs);
    AggStats Cloned = clonedFleet(*Plan, X, Size, Forks + 1);
    if (Forked.ForkedIn != Forks) {
      std::fprintf(stderr, "expected %u forked-in sessions, saw %llu\n",
                   Forks,
                   static_cast<unsigned long long>(Forked.ForkedIn));
      return 1;
    }
    double Ratio = Forked.Bytes
                       ? static_cast<double>(Cloned.Bytes) /
                             static_cast<double>(Forked.Bytes)
                       : 0.0;
    std::printf("%10zu %12.2f %14.1f %14.1f %14llu %7.1fx\n", Size,
                MedianForkUs, Forked.Bytes / 1024.0, Cloned.Bytes / 1024.0,
                static_cast<unsigned long long>(Forked.NodesShared),
                Ratio);
    std::fflush(stdout);
  }
  std::printf("\nfork [us] must stay flat as elements grow (O(1) fork); "
              "ratio approaches the session count when forks share "
              "everything\n");
  return 0;
}
