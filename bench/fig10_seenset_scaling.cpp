//===- bench/fig10_seenset_scaling.cpp --------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 10 (§V-A): Seen Set runtime over trace length for
/// small, medium and large set sizes, optimized vs. non-optimized. The
/// paper's observations to reproduce:
///
///  * the speedup stabilizes around trace length 1e6;
///  * the optimized runtime is hardly influenced by the set size, while
///    the non-optimized one grows with it — which is why the Fig. 9
///    speedups grow with the structure size.
///
/// (The paper's curves bend at short lengths due to JVM JIT warm-up; an
/// ahead-of-time C++ monitor is linear from the start.)
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tessla;
using namespace tessla::bench;

int main() {
  unsigned Reps = repetitions();
  const size_t Lengths[] = {10000, 100000, 1000000, 2000000};
  const std::pair<const char *, int64_t> Sizes[] = {
      {"small (10)", 10}, {"medium (200)", 200}, {"large (10000)", 10000}};

  std::printf("Figure 10 — Seen Set runtime vs trace length "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-14s %10s %12s %12s %9s\n", "size", "events", "opt [s]",
              "base [s]", "speedup");
  for (auto [Label, Size] : Sizes) {
    Spec S = workloads::seenSet();
    for (size_t Length : Lengths) {
      size_t N = scaled(Length);
      auto Events = tracegen::randomInts(*S.lookup("x"), N, 2 * Size, 201);
      Comparison C = compare(S, Events, Reps);
      std::printf("%-14s %10zu %12.4f %12.4f %8.2fx\n", Label, N,
                  C.Optimized.Seconds, C.Baseline.Seconds, C.speedup());
      std::fflush(stdout);
    }
  }
  std::printf("\npaper observation: speedup stabilizes around 1e6 "
              "events; optimized runtime is nearly size-independent\n");
  return 0;
}
