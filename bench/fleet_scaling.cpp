//===- bench/fleet_scaling.cpp ----------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Fleet scaling: many independent monitor sessions (the ROADMAP's
/// "heavy traffic from millions of users" axis, scaled down) over the
/// Seen Set and db-log workloads, swept across worker shard counts and
/// ingest producer-thread counts. Sessions start hash-pinned but may be
/// work-stolen, so the ideal curve is linear until the hardware runs
/// out of cores — the printed hardware concurrency bounds the
/// achievable speedup (on a 1-core container all shard and producer
/// counts collapse to the same throughput).
///
/// Knobs: --shards and --producers take comma-separated sweep lists,
/// --sessions the session count; --transport=inproc|socket|both adds
/// the ingestion-carrier axis: inproc feeds ProducerHandles directly,
/// socket routes every record through the wire format and a Unix-domain
/// socket into a FleetServer in the same process (server setup and the
/// Hello handshake stay outside the timed region), so the row pair
/// prices the serialization + syscall overhead of the service path
/// against the shared-memory fan-in; --batched adds the SoA lockstep
/// engine
/// as a second mode axis, printing batched vs per-session rows at every
/// configuration (the batched row's speedup column is relative to the
/// per-session row at the same shard/producer count — on a 1-core box
/// this isolates the dispatch-amortization win from parallelism).
/// --native adds the compiled tier the same way: every shard runs the
/// dlopen()ed monitor, built once per workload outside the timed
/// region. Native lanes cannot migrate, so its rows measure the
/// compiled tier under pinned sessions (steals are inert).
/// TESSLA_BENCH_SCALE scales events per session, TESSLA_BENCH_SESSIONS
/// overrides the session count (default 64), TESSLA_BENCH_REPS the
/// median repetition count.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tessla/Runtime/FleetClient.h"
#include "tessla/Runtime/FleetServer.h"
#include "tessla/Runtime/MonitorFleet.h"

#include <cstring>
#include <thread>
#include <unistd.h>

using namespace tessla;
using namespace tessla::bench;

namespace {

unsigned sessionCount() {
  if (const char *Env = std::getenv("TESSLA_BENCH_SESSIONS"))
    return std::max(1, std::atoi(Env));
  return 64;
}

std::vector<unsigned> parseList(const char *Text) {
  std::vector<unsigned> Out;
  for (const char *P = Text; *P;) {
    char *End = nullptr;
    long N = std::strtol(P, &End, 10);
    if (End == P)
      break;
    Out.push_back(static_cast<unsigned>(std::max(1l, N)));
    P = (*End == ',') ? End + 1 : End;
  }
  if (Out.empty())
    Out.push_back(1);
  return Out;
}

/// Per-session traces for one workload.
struct FleetWorkload {
  const char *Label;
  Spec S;
  std::vector<std::vector<TraceEvent>> SessionTraces;
  size_t TotalEvents = 0;
};

FleetWorkload seenSetWorkload(unsigned Sessions, size_t EventsPerSession) {
  FleetWorkload W{"seen set", workloads::seenSet(), {}, 0};
  StreamId X = *W.S.lookup("x");
  for (unsigned I = 0; I != Sessions; ++I) {
    W.SessionTraces.push_back(
        tracegen::randomInts(X, EventsPerSession, 400, 9000 + I));
    W.TotalEvents += W.SessionTraces.back().size();
  }
  return W;
}

FleetWorkload dbLogWorkload(unsigned Sessions, size_t EventsPerSession) {
  FleetWorkload W{"db-log", workloads::dbAccessConstraint(), {}, 0};
  for (unsigned I = 0; I != Sessions; ++I) {
    tracegen::DbLogConfig Config;
    Config.Count = EventsPerSession;
    Config.Seed = 7000 + I;
    W.SessionTraces.push_back(tracegen::dbLog(*W.S.lookup("ins"),
                                              *W.S.lookup("del"),
                                              *W.S.lookup("acc"), Config));
    W.TotalEvents += W.SessionTraces.back().size();
  }
  return W;
}

/// One timed fleet run: \p Producers ingest threads, each feeding its
/// modulo-partition of the sessions round-robin in chunks of \p Chunk
/// events per session (per-session order preserved), then finish.
/// Chunk=1 is fully time-interleaved arrival — every session advances
/// one event per round, the shape of live traffic from concurrent
/// sessions; larger chunks model replay from per-session buffers and
/// hand each session a run of consecutive events.
double timeFleet(const FleetWorkload &W, const Program &Plan,
                 unsigned Shards, unsigned Producers, FleetMode Mode,
                 size_t Chunk, uint64_t &OutputsOut,
                 const EngineFactory &Native = {}) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.MaxProducers = std::max(16u, Producers);
  Opts.CollectOutputs = false; // throughput only; counters still run
  Opts.Mode = Mode;
  Opts.NativeFactory = Native;
  MonitorFleet Fleet(Plan, Opts);

  auto Start = std::chrono::steady_clock::now();
  size_t MaxLen = 0;
  for (const auto &Trace : W.SessionTraces)
    MaxLen = std::max(MaxLen, Trace.size());
  auto Ingest = [&](unsigned P) {
    ProducerHandle Handle = Fleet.producer();
    for (size_t Base = 0; Base < MaxLen; Base += Chunk) {
      for (SessionId Session = P; Session < W.SessionTraces.size();
           Session += Producers) {
        const auto &Trace = W.SessionTraces[Session];
        size_t End = std::min(Base + Chunk, Trace.size());
        for (size_t I = Base; I < End; ++I) {
          const auto &[Id, Ts, V] = Trace[I];
          Handle.feed(Session, Id, Ts, V);
        }
      }
    }
  };
  if (Producers == 1) {
    Ingest(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Producers);
    for (unsigned P = 0; P != Producers; ++P)
      Threads.emplace_back(Ingest, P);
    for (std::thread &T : Threads)
      T.join();
  }
  Fleet.finish();
  auto EndTime = std::chrono::steady_clock::now();
  if (Fleet.failed()) {
    std::fprintf(stderr, "fleet benchmark failed: %s\n",
                 Fleet.errors().front().Message.c_str());
    std::exit(1);
  }
  OutputsOut = Fleet.stats().totalOutputs();
  if (std::getenv("TESSLA_BENCH_STATS"))
    std::fprintf(stderr, "%s", Fleet.stats().str().c_str());
  return std::chrono::duration<double>(EndTime - Start).count();
}

/// The same timed run over the service path: a FleetServer in this
/// process behind a Unix-domain socket, every record crossing the wire
/// format. Server construction, listening and the Hello handshake stay
/// outside the timed region; the clock covers ingest (each producer
/// thread dials its own connection inside the timed region, as a real
/// client burst would) plus finish.
double timeFleetSocket(const FleetWorkload &W, const Program &Plan,
                       unsigned Shards, unsigned Producers, FleetMode Mode,
                       size_t Chunk, uint64_t &OutputsOut,
                       const EngineFactory &Native = {}) {
  FleetOptions Opts;
  Opts.Shards = Shards;
  Opts.MaxProducers = std::max(16u, Producers);
  Opts.CollectOutputs = false;
  Opts.Mode = Mode;
  Opts.NativeFactory = Native;
  FleetServer Server(Plan, Opts);

  static unsigned Run = 0;
  std::string Path = "/tmp/tessla_fleet_bench_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(Run++) + ".sock";
  std::string Err;
  auto L = listenUnixSocket(Path, &Err);
  if (!L) {
    std::fprintf(stderr, "bench listen failed: %s\n", Err.c_str());
    std::exit(1);
  }
  std::thread Serve([&] { Server.serve(*L); });
  auto Client = makeUnixSocketClient(Path, &Err);
  if (!Client) {
    std::fprintf(stderr, "bench connect failed: %s\n", Err.c_str());
    std::exit(1);
  }

  auto Start = std::chrono::steady_clock::now();
  size_t MaxLen = 0;
  for (const auto &Trace : W.SessionTraces)
    MaxLen = std::max(MaxLen, Trace.size());
  auto Ingest = [&](unsigned P) {
    std::string PErr;
    auto Handle = Client->producer(&PErr);
    if (!Handle) {
      std::fprintf(stderr, "bench producer failed: %s\n", PErr.c_str());
      std::exit(1);
    }
    for (size_t Base = 0; Base < MaxLen; Base += Chunk) {
      for (SessionId Session = P; Session < W.SessionTraces.size();
           Session += Producers) {
        const auto &Trace = W.SessionTraces[Session];
        size_t End = std::min(Base + Chunk, Trace.size());
        for (size_t I = Base; I < End; ++I) {
          const auto &[Id, Ts, V] = Trace[I];
          Handle->feed(Session, Id, Ts, V);
        }
      }
    }
    if (!Handle->close()) {
      std::fprintf(stderr, "bench producer close failed: %s\n",
                   Handle->error().c_str());
      std::exit(1);
    }
  };
  if (Producers == 1) {
    Ingest(0);
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(Producers);
    for (unsigned P = 0; P != Producers; ++P)
      Threads.emplace_back(Ingest, P);
    for (std::thread &T : Threads)
      T.join();
  }
  auto Finish = Client->finish(&Err);
  auto EndTime = std::chrono::steady_clock::now();
  if (!Finish) {
    std::fprintf(stderr, "bench finish failed: %s\n", Err.c_str());
    std::exit(1);
  }
  OutputsOut = Finish->TotalOutputs;
  Client->shutdownServer();
  Serve.join();
  return std::chrono::duration<double>(EndTime - Start).count();
}

double medianFleet(const FleetWorkload &W, const Program &Plan,
                   unsigned Shards, unsigned Producers, FleetMode Mode,
                   size_t Chunk, unsigned Reps, bool OverSocket,
                   uint64_t &OutputsOut, const EngineFactory &Native = {}) {
  std::vector<double> Times;
  uint64_t FirstOutputs = 0;
  for (unsigned I = 0; I != Reps; ++I) {
    uint64_t Outputs = 0;
    Times.push_back(OverSocket
                        ? timeFleetSocket(W, Plan, Shards, Producers, Mode,
                                          Chunk, Outputs, Native)
                        : timeFleet(W, Plan, Shards, Producers, Mode,
                                    Chunk, Outputs, Native));
    if (I == 0)
      FirstOutputs = Outputs;
    else if (Outputs != FirstOutputs) {
      std::fprintf(stderr, "non-deterministic fleet output count!\n");
      std::exit(1);
    }
  }
  std::sort(Times.begin(), Times.end());
  OutputsOut = FirstOutputs;
  return Times[Times.size() / 2];
}

} // namespace

int main(int argc, char **argv) {
  unsigned Reps = repetitions();
  unsigned Sessions = sessionCount();
  std::vector<unsigned> ShardCounts = {1, 2, 4, 8};
  std::vector<unsigned> ProducerCounts = {1};
  size_t Chunk = 64;
  bool Batched = false;
  bool Native = false;
  // Ingestion carriers to sweep: false = in-process ProducerHandle,
  // true = wire frames over a Unix-domain socket into a FleetServer.
  std::vector<bool> Carriers = {false};

  auto ParseTransport = [&](const char *Text) {
    if (std::strcmp(Text, "inproc") == 0)
      Carriers = {false};
    else if (std::strcmp(Text, "socket") == 0)
      Carriers = {true};
    else if (std::strcmp(Text, "both") == 0)
      Carriers = {false, true};
    else
      return false;
    return true;
  };

  bool Usage = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--shards") == 0 && I + 1 < argc)
      ShardCounts = parseList(argv[++I]);
    else if (std::strcmp(argv[I], "--producers") == 0 && I + 1 < argc)
      ProducerCounts = parseList(argv[++I]);
    else if (std::strcmp(argv[I], "--sessions") == 0 && I + 1 < argc)
      Sessions = std::max(1, std::atoi(argv[++I]));
    else if (std::strcmp(argv[I], "--batched") == 0)
      Batched = true;
    else if (std::strcmp(argv[I], "--native") == 0)
      Native = true;
    else if (std::strcmp(argv[I], "--chunk") == 0 && I + 1 < argc)
      Chunk = static_cast<size_t>(std::max(1, std::atoi(argv[++I])));
    else if (std::strncmp(argv[I], "--transport=", 12) == 0)
      Usage = !ParseTransport(argv[I] + 12);
    else if (std::strcmp(argv[I], "--transport") == 0 && I + 1 < argc)
      Usage = !ParseTransport(argv[++I]);
    else
      Usage = true;
    if (Usage) {
      std::fprintf(stderr,
                   "usage: %s [--shards 1,2,4,8] [--producers 1,2] "
                   "[--sessions N] [--chunk N] "
                   "[--transport=inproc|socket|both] [--batched] "
                   "[--native]\n",
                   argv[0]);
      return 2;
    }
  }
  // Per-session first so each batched/native row can report its speedup
  // over the per-session run at the same configuration.
  std::vector<FleetMode> Modes = {FleetMode::PerSession};
  if (Batched)
    Modes.push_back(FleetMode::Batched);
  if (Native)
    Modes.push_back(FleetMode::Native);

  std::printf("Fleet scaling — multi-session throughput vs shard and "
              "producer count (median of %u runs)\n",
              Reps);
  std::printf("hardware concurrency: %u; sessions: %u; ingest chunk: "
              "%zu\n\n",
              std::thread::hardware_concurrency(), Sessions, Chunk);

  FleetWorkload Workloads[] = {
      seenSetWorkload(Sessions, scaled(5000)),
      dbLogWorkload(Sessions, scaled(5000)),
  };

  std::printf("%-10s %-9s %-9s %8s %10s %10s %10s %12s %9s\n", "workload",
              "mode", "transport", "shards", "producers", "events",
              "time [s]", "Mev/s", "speedup");
  for (FleetWorkload &W : Workloads) {
    // Optimized monitors; the opt-vs-baseline axis is fig9/fig10.
    DiagnosticEngine Diags;
    std::optional<Program> PlanOpt =
        compileSpec(W.S, CompileOptions(), Diags);
    if (!PlanOpt) {
      std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
      return 1;
    }
    Program &Plan = *PlanOpt;
    EngineFactory NativeFactory;
    if (Native) {
      std::string Error;
      NativeFactory =
          makeNativeEngineFactory(Plan, NativeCompileOptions(), Error);
      if (!NativeFactory) {
        std::fprintf(stderr, "native tier unavailable: %s\n",
                     Error.c_str());
        return 1;
      }
    }
    double Base = 0;
    for (unsigned Producers : ProducerCounts) {
      for (unsigned Shards : ShardCounts) {
        // Output counts must agree across every mode AND carrier at the
        // same configuration — the socket rows replay the identical
        // workload through the wire format.
        uint64_t ConfigOutputs = 0;
        bool HaveConfigOutputs = false;
        for (bool OverSocket : Carriers) {
          double PerSessionSeconds = 0;
          for (FleetMode Mode : Modes) {
            uint64_t Outputs = 0;
            double Seconds =
                medianFleet(W, Plan, Shards, Producers, Mode, Chunk,
                            Reps, OverSocket, Outputs, NativeFactory);
            double Speedup;
            if (Mode == FleetMode::PerSession) {
              if (Base == 0)
                Base = Seconds;
              PerSessionSeconds = Seconds;
              Speedup = Base / Seconds; // vs first per-session config
            } else {
              // vs per-session at the same shard/producer/carrier.
              Speedup = PerSessionSeconds / Seconds;
            }
            if (!HaveConfigOutputs) {
              ConfigOutputs = Outputs;
              HaveConfigOutputs = true;
            } else if (Outputs != ConfigOutputs) {
              std::fprintf(stderr,
                           "%s/%s output count diverged at the same "
                           "configuration!\n",
                           Mode == FleetMode::Batched     ? "batched"
                           : Mode == FleetMode::Native    ? "native"
                                                          : "per-sess",
                           OverSocket ? "socket" : "inproc");
              return 1;
            }
            std::printf(
                "%-10s %-9s %-9s %8u %10u %10zu %10.4f %12.3f %8.2fx\n",
                W.Label,
                Mode == FleetMode::Batched     ? "batched"
                : Mode == FleetMode::Native    ? "native"
                                               : "per-sess",
                OverSocket ? "socket" : "inproc", Shards, Producers,
                W.TotalEvents, Seconds,
                static_cast<double>(W.TotalEvents) / Seconds / 1e6,
                Speedup);
            std::fflush(stdout);
          }
        }
      }
    }
  }
  std::printf("\nsessions start shard-pinned and may be work-stolen; "
              "scaling is bounded by min(shards + producers, cores)\n");
  return 0;
}
