//===- bench/table1_realworld.cpp -------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table I (§V-B): the four real-world monitoring
/// specifications, optimized vs. non-optimized. The original traces
/// (Nokia RV-Competition database log, ReNuBiL power data) are not
/// public; synthetic generators with the same structure drive the same
/// code paths (see DESIGN.md, substitution table).
///
/// Paper reference speedups:
///   DBTimeConstraint        1.3x
///   DBAccessConstraint 33%  2.1x
///   DBAccessConstraint full >15.5x (baseline did not finish in 1 h; its
///                           memory grew with the unbounded live-id set)
///   PeakDetection           1.9x
///   SpectrumCalculation     2.0x
///
/// The paper's runtimes include ~70 s of disk I/O for the 14 GB log; our
/// traces are in memory, so the DB speedups here isolate the
/// data-structure effect and land between the paper's 33% number and its
/// synthetic ceiling.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace tessla;
using namespace tessla::bench;

namespace {

void report(const char *Name, const Comparison &C, size_t Events) {
  std::printf("%-24s %10zu %10.3f %10.3f %8.2fx\n", Name, Events,
              C.Optimized.Seconds, C.Baseline.Seconds, C.speedup());
  std::fflush(stdout);
}

} // namespace

int main() {
  unsigned Reps = repetitions();
  std::printf("Table I — real-world scenarios on synthetic substitutes "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-24s %10s %10s %10s %9s\n", "specification", "events",
              "opt [s]", "base [s]", "speedup");

  // DBTimeConstraint: db2/db3 insert pairs, mostly within the window.
  {
    Spec S = workloads::dbTimeConstraint();
    tracegen::DbPairConfig Config;
    Config.Count = scaled(400000);
    Config.Seed = 301;
    auto Events = tracegen::dbPairLog(*S.lookup("db2"), *S.lookup("db3"),
                                      Config);
    report("DBTimeConstraint", compare(S, Events, Reps), Events.size());
  }

  // DBAccessConstraint on 33% of the trace: deletes keep the set small.
  Spec DbAccess = workloads::dbAccessConstraint();
  {
    tracegen::DbLogConfig Config;
    Config.Count = scaled(400000);
    Config.InsertProb = 0.3;
    Config.DeleteProb = 0.25; // churn keeps the live set bounded
    Config.Seed = 302;
    auto Events = tracegen::dbLog(*DbAccess.lookup("ins"),
                                  *DbAccess.lookup("del"),
                                  *DbAccess.lookup("acc"), Config);
    report("DBAccessConstraint(33%)", compare(DbAccess, Events, Reps),
           Events.size());
  }

  // DBAccessConstraint on the full trace: few deletes — the live-id set
  // grows without bound, which is what blew up the paper's baseline.
  {
    tracegen::DbLogConfig Config;
    Config.Count = scaled(1200000);
    Config.InsertProb = 0.5;
    Config.DeleteProb = 0.02;
    Config.Seed = 303;
    auto Events = tracegen::dbLog(*DbAccess.lookup("ins"),
                                  *DbAccess.lookup("del"),
                                  *DbAccess.lookup("acc"), Config);
    report("DBAccessConstraint(full)", compare(DbAccess, Events, Reps),
           Events.size());
  }

  // PeakDetection: +-15 min moving average at one sample per minute.
  {
    Spec S = workloads::peakDetection(30);
    tracegen::PowerConfig Config;
    Config.Count = scaled(500000);
    Config.Period = 60;
    Config.PeakProb = 0.002;
    Config.Seed = 304;
    auto Events = tracegen::powerSignal(*S.lookup("p"), Config);
    report("PeakDetection", compare(S, Events, Reps), Events.size());
  }

  // SpectrumCalculation: histogram of bucketed consumption values.
  {
    Spec S = workloads::spectrumCalculation();
    tracegen::PowerConfig Config;
    Config.Count = scaled(500000);
    Config.Period = 60;
    Config.Seed = 305;
    auto Events = tracegen::powerSignal(*S.lookup("p"), Config);
    report("SpectrumCalculation", compare(S, Events, Reps),
           Events.size());
  }

  std::printf("\npaper reference (Table I): DBTime 1.3x, "
              "DBAccess(33%%) 2.1x, DBAccess(full) >15.5x, "
              "PeakDetection 1.9x, Spectrum 2.0x\n");
  return 0;
}
