//===- bench/ablation_codegen.cpp -------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Compiled-monitor ablation: re-runs the Fig. 9 synthetic comparison
/// with monitors *generated as C++ and compiled with -O2* instead of the
/// interpreter. This removes the interpreter's per-event dispatch
/// overhead (which is identical in both configurations and therefore
/// dilutes speedups) and is the closest analogue of the paper's setup,
/// where each monitor is a specialized compiled program.
///
/// Each generated monitor carries its own synthetic driver (random Int
/// events generated in memory, like the paper's artifact) and prints its
/// measured monitoring time; this harness emits, compiles, runs and
/// tabulates.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tessla/CodeGen/CppEmitter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef TESSLA_INCLUDE_DIR
#define TESSLA_INCLUDE_DIR "include"
#endif

using namespace tessla;
using namespace tessla::bench;

namespace {

struct CompiledRun {
  double Seconds = 0;
  uint64_t Outputs = 0;
  bool Ok = false;
};

/// Emits \p S with the benchmark driver and compiles it; returns the
/// binary path (empty on failure).
std::string emitAndCompile(const Spec &S, bool Optimize,
                           const std::string &WorkDir,
                           const std::string &Tag) {
  CompileOptions COpts;
  COpts.Optimize = Optimize;
  DiagnosticEngine Diags;
  std::optional<Program> Plan = compileSpec(S, COpts, Diags);
  if (!Plan) {
    std::fprintf(stderr, "compile failed:\n%s", Diags.str().c_str());
    return "";
  }
  CppEmitterOptions EOpts;
  EOpts.EmitBenchMain = true;
  auto Source = emitCppMonitor(*Plan, EOpts, Diags);
  if (!Source) {
    std::fprintf(stderr, "emission failed:\n%s", Diags.str().c_str());
    return "";
  }
  std::string Base = WorkDir + "/" + Tag;
  {
    std::ofstream Out(Base + ".cpp");
    Out << *Source;
  }
  std::string Compile = "c++ -std=c++20 -O2 -I " TESSLA_INCLUDE_DIR " " +
                        Base + ".cpp -o " + Base + " 2> " + Base +
                        ".log";
  if (std::system(Compile.c_str()) != 0) {
    std::fprintf(stderr, "compilation of %s failed (see %s.log)\n",
                 Tag.c_str(), Base.c_str());
    return "";
  }
  return Base;
}

/// One run of a compiled monitor.
CompiledRun runOnce(const std::string &Binary, size_t Count,
                    int64_t Domain) {
  CompiledRun R;
  std::string Run = Binary + " " + std::to_string(Count) + " " +
                    std::to_string(Domain) + " 42 > " + Binary + ".out";
  if (std::system(Run.c_str()) != 0) {
    std::fprintf(stderr, "run of %s failed\n", Binary.c_str());
    return R;
  }
  std::ifstream In(Binary + ".out");
  In >> R.Outputs >> R.Seconds;
  R.Ok = In.good() || In.eof();
  return R;
}

/// Median of \p Reps runs of one compiled monitor (compiled once).
CompiledRun medianCompiled(const Spec &S, bool Optimize, size_t Count,
                           int64_t Domain, const std::string &WorkDir,
                           const std::string &Tag, unsigned Reps) {
  std::string Binary = emitAndCompile(S, Optimize, WorkDir, Tag);
  if (Binary.empty())
    return CompiledRun();
  std::vector<CompiledRun> Runs;
  for (unsigned I = 0; I != Reps; ++I) {
    CompiledRun R = runOnce(Binary, Count, Domain);
    if (!R.Ok)
      return R;
    Runs.push_back(R);
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const CompiledRun &A, const CompiledRun &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

} // namespace

int main() {
  unsigned Reps = repetitions();
  std::string WorkDir = "/tmp/tessla_cgen_bench";
  std::string Mk = "mkdir -p " + WorkDir;
  if (std::system(Mk.c_str()) != 0)
    return 1;

  std::printf("Compiled-monitor ablation — Fig. 9 with generated C++ "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-13s %-14s %10s %10s %10s %9s\n", "workload", "size",
              "events", "opt [s]", "base [s]", "speedup");

  struct SizeConfig {
    const char *Label;
    int64_t Size;
    size_t Length;
  };
  const SizeConfig Sizes[] = {
      {"small (10)", 10, 2000000},
      {"medium (200)", 200, 2000000},
      {"large (10000)", 10000, 1000000},
  };

  for (const SizeConfig &Config : Sizes) {
    size_t Length = scaled(Config.Length);
    struct Workload {
      const char *Name;
      Spec S;
      int64_t Domain;
    };
    Workload Workloads[] = {
        {"Seen Set", workloads::seenSet(), 2 * Config.Size},
        {"Map Window", workloads::mapWindow(Config.Size), 1 << 20},
        {"Queue Window", workloads::queueWindow(Config.Size), 1 << 20},
    };
    for (Workload &W : Workloads) {
      std::string Tag = std::string(W.Name) + "_" +
                        std::to_string(Config.Size);
      for (char &C : Tag)
        if (C == ' ')
          C = '_';
      CompiledRun Opt = medianCompiled(W.S, true, Length, W.Domain,
                                       WorkDir, Tag + "_opt", Reps);
      CompiledRun Base = medianCompiled(W.S, false, Length, W.Domain,
                                        WorkDir, Tag + "_base", Reps);
      if (!Opt.Ok || !Base.Ok)
        continue;
      if (Opt.Outputs != Base.Outputs) {
        std::fprintf(stderr, "output mismatch for %s!\n", W.Name);
        return 1;
      }
      std::printf("%-13s %-14s %10zu %10.3f %10.3f %8.2fx\n", W.Name,
                  Config.Label, Length, Opt.Seconds, Base.Seconds,
                  Base.Seconds / Opt.Seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\ncompare with the interpreter-based fig9_synthetic and "
              "the paper's Fig. 9 (2.1/3.9/4.9, 1.5/2.6/3.3, "
              "1.5/1.6/1.8)\n");
  return 0;
}
