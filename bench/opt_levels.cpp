//===- bench/opt_levels.cpp -------------------------------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Interpreter throughput of the Fig. 9 workloads (Seen Set, Map Window,
/// Queue Window) at program optimization level -O0 vs -O1 (constant
/// folding, step fusion, dead-step elimination), plus the step/slot-table
/// reduction the passes achieve. Both levels run with the aggregate
/// update (mutability) optimization on — this measures the pass
/// framework, not the paper's persistent-vs-mutable axis.
///
/// Scale trace lengths with TESSLA_BENCH_SCALE, repetitions with
/// TESSLA_BENCH_REPS.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tessla/Opt/PassManager.h"

using namespace tessla;
using namespace tessla::bench;

namespace {

/// Compiles \p S at the given optimization level.
Program planAt(unsigned Level, const Spec &S,
               OptStatistics *Stats = nullptr) {
  CompileOptions Opts;
  Opts.OptLevel = Level;
  DiagnosticEngine Diags;
  std::optional<Program> P = compileSpec(S, Opts, Diags, Stats);
  if (!P) {
    std::fprintf(stderr, "optimizer failed:\n%s", Diags.str().c_str());
    std::exit(1);
  }
  return std::move(*P);
}

RunResult timePlan(const Program &Plan,
                   const std::vector<TraceEvent> &Events) {
  Monitor M(Plan);
  RunResult R;
  M.setOutputHandler([&R](Time, StreamId, const Value &) { ++R.Outputs; });
  auto Start = std::chrono::steady_clock::now();
  for (const auto &[Id, Ts, V] : Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish();
  auto End = std::chrono::steady_clock::now();
  R.Seconds = std::chrono::duration<double>(End - Start).count();
  if (M.failed()) {
    std::fprintf(stderr, "benchmark monitor failed: %s\n",
                 M.errorMessage().c_str());
    R.Failed = true;
  }
  return R;
}

RunResult medianPlan(const Program &Plan,
                     const std::vector<TraceEvent> &Events,
                     unsigned Reps) {
  std::vector<RunResult> Runs;
  for (unsigned I = 0; I != Reps; ++I) {
    Runs.push_back(timePlan(Plan, Events));
    if (Runs.back().Failed)
      std::exit(1);
  }
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.Seconds < B.Seconds;
            });
  return Runs[Runs.size() / 2];
}

void benchWorkload(const char *Name, const Spec &S,
                   const std::vector<TraceEvent> &Events, unsigned Reps) {
  Program P0 = planAt(0, S);
  OptStatistics Stats;
  Program P1 = planAt(1, S, &Stats);

  RunResult R0 = medianPlan(P0, Events, Reps);
  RunResult R1 = medianPlan(P1, Events, Reps);
  if (R0.Outputs != R1.Outputs) {
    std::fprintf(stderr, "-O0/-O1 output mismatch (%llu vs %llu)!\n",
                 static_cast<unsigned long long>(R0.Outputs),
                 static_cast<unsigned long long>(R1.Outputs));
    std::exit(1);
  }

  double MevS0 = static_cast<double>(Events.size()) / R0.Seconds / 1e6;
  double MevS1 = static_cast<double>(Events.size()) / R1.Seconds / 1e6;
  std::printf("%-13s %10zu %8.2f %8.2f %8.2fx   %2u -> %2u steps, "
              "fold %u fuse %u elim %u\n",
              Name, Events.size(), MevS0, MevS1, R0.Seconds / R1.Seconds,
              Stats.Passes.empty() ? 0 : Stats.Passes.front().StepsBefore,
              Stats.Passes.empty() ? 0 : Stats.Passes.back().StepsAfter,
              Stats.totalFolded(), Stats.totalFused(),
              Stats.totalEliminated());
  std::fflush(stdout);
}

} // namespace

int main() {
  unsigned Reps = repetitions();
  std::printf("Optimization levels — interpreter throughput -O0 vs -O1 "
              "(median of %u runs)\n",
              Reps);
  std::printf("%-13s %10s %8s %8s %9s   %s\n", "workload", "events",
              "-O0 Me/s", "-O1 Me/s", "speedup", "pass statistics");

  size_t Length = scaled(2000000);
  {
    Spec S = workloads::seenSet();
    auto Events = tracegen::randomInts(*S.lookup("x"), Length, 400, 201);
    benchWorkload("Seen Set", S, Events, Reps);
  }
  {
    Spec S = workloads::mapWindow(200);
    auto Events =
        tracegen::randomInts(*S.lookup("x"), Length, 1 << 20, 202);
    benchWorkload("Map Window", S, Events, Reps);
  }
  {
    Spec S = workloads::queueWindow(200);
    auto Events =
        tracegen::randomInts(*S.lookup("x"), Length, 1 << 20, 203);
    benchWorkload("Queue Window", S, Events, Reps);
  }
  return 0;
}
