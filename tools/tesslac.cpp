//===- tools/tesslac.cpp - TeSSLa compiler driver ---------------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// The compiler driver: the command-line face of the library, analogous
/// to the paper's TeSSLa compiler binary. Output selection is fully
/// orthogonal: `--emit=<what>` picks the artifact, `-o <file>` picks the
/// destination (stdout by default), and the remaining flags tune the
/// pipeline independently of both.
///
/// \code
///   tesslac spec.tessla                      # analysis report
///   tesslac spec.tessla --emit=flat          # flattened equations
///   tesslac spec.tessla --emit=dot | dot -Tsvg ...   # usage graph
///   tesslac spec.tessla --emit=plan          # interpreter plan
///   tesslac spec.tessla --emit=cpp --main -o monitor.cpp
///   tesslac spec.tessla -O1 --emit=tpb -o spec.tpb   # program bundle
///                                            # (execute: tessla-run)
///   tesslac spec.tessla --run trace.txt      # execute on a trace
///   tesslac spec.tessla --baseline --run trace.txt   # all-persistent
///   tesslac spec.tessla --run trace.txt --fleet 4 --sessions 64
///                                            # sharded multi-session replay
/// \endcode
///
//===----------------------------------------------------------------------===//

#include "tessla/Analysis/GraphWriter.h"
#include "tessla/Analysis/Pipeline.h"
#include "tessla/Analysis/Statistics.h"
#include "tessla/CodeGen/CppEmitter.h"
#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Compiler/Compiler.h"
#include "tessla/Lang/Parser.h"
#include "tessla/Lang/PrintSource.h"
#include "tessla/Opt/Lint.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceIO.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace tessla;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spec.tessla> [options]\n"
      "  --emit=report|flat|source|stats|dot|plan|cpp|tpb|run\n"
      "                                    what to produce (default report)\n"
      "  -o <file>                         write the emitted artifact to\n"
      "                                    <file> instead of stdout\n"
      "  --baseline                        disable the aggregate update\n"
      "                                    optimization (all persistent)\n"
      "  -O0 | -O1                         program optimization level\n"
      "                                    (default -O0; -O1 folds\n"
      "                                    constants, fuses steps and\n"
      "                                    eliminates dead steps)\n"
      "  --dump-passes                     print per-pass statistics to\n"
      "                                    stderr\n"
      "  --dump-analysis[=dot]             print the abstract-\n"
      "                                    interpretation facts of the\n"
      "                                    compiled program (tick kind,\n"
      "                                    clock formula, value range,\n"
      "                                    memory bound per stream) as\n"
      "                                    text, or as an annotated dot\n"
      "                                    graph; honors -O<level> and\n"
      "                                    --baseline\n"
      "  --lint                            run the spec linter and print\n"
      "                                    its warnings to stderr\n"
      "  --werror                          treat lint warnings as errors\n"
      "                                    (implies --lint, exits 1)\n"
      "  --main                            add a main() to --emit=cpp\n"
      "  --trace <trace.txt>               input trace for --emit=run\n"
      "  --run <trace.txt>                 shorthand for\n"
      "                                    --emit=run --trace <trace.txt>\n"
      "  --horizon <t>                     bound delay draining at finish\n"
      "  --fleet <n>                       replay through a MonitorFleet\n"
      "                                    with n worker shards\n"
      "  --sessions <m>                    fleet sessions; the trace is\n"
      "                                    replayed once per session\n"
      "                                    (default 1)\n"
      "  --producers <p>                   fleet producer threads; the\n"
      "                                    sessions are partitioned over\n"
      "                                    them (default 1)\n"
      "  --engine=interp|batched|native    execution engine for\n"
      "                                    --emit=run: one interpreter\n"
      "                                    Monitor per session, SoA\n"
      "                                    lockstep lanes, or the\n"
      "                                    compiled native tier\n"
      "                                    (CppEmitter -> system compiler\n"
      "                                    -> dlopen; falls back to the\n"
      "                                    interpreter when no compiler\n"
      "                                    is available). Outputs are\n"
      "                                    byte-identical across engines.\n"
      "                                    Default: batched with an\n"
      "                                    arrival-pattern heuristic\n"
      "                                    (fleet), interpreter\n"
      "                                    (sequential)\n"
      "  --batched | --per-session         aliases for --engine=batched /\n"
      "                                    --engine=interp\n",
      Argv0);
}

/// Engine selection shared by the sequential and fleet paths. Explicit
/// selections must agree; the aliases and --engine= are one knob.
enum class EngineSel { Default, Interp, Batched, Native };

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// The -o destination: stdout unless a path was given. Binary artifacts
/// (tpb) open in "wb" so the bundle survives every platform's stdio.
FILE *openOutput(const char *Path, bool Binary) {
  if (!Path)
    return stdout;
  FILE *F = std::fopen(Path, Binary ? "wb" : "w");
  if (!F)
    std::fprintf(stderr, "cannot open %s for writing\n", Path);
  return F;
}

int closeOutput(FILE *F, const char *Path) {
  if (F == stdout)
    return std::fflush(F) == 0 ? 0 : 1;
  if (std::fclose(F) != 0) {
    std::fprintf(stderr, "short write to %s\n", Path);
    return 1;
  }
  return 0;
}

/// Emits \p Text to the -o destination; returns the process exit code.
int emitText(const std::string &Text, const char *OutPath) {
  FILE *Out = openOutput(OutPath, /*Binary=*/false);
  if (!Out)
    return 1;
  std::fwrite(Text.data(), 1, Text.size(), Out);
  return closeOutput(Out, OutPath);
}

} // namespace

int main(int argc, char **argv) {
  const char *SpecPath = nullptr;
  const char *TracePath = nullptr;
  const char *OutPath = nullptr;
  std::string Emit = "report";
  bool Baseline = false;
  bool EmitMain = false;
  unsigned OptLevel = 0;
  bool DumpPasses = false;
  bool DumpAnalysis = false;
  bool DumpAnalysisDot = false;
  bool Lint = false;
  bool Werror = false;
  std::optional<Time> Horizon;
  unsigned FleetShards = 0; // 0 = single-session sequential replay
  unsigned FleetSessions = 1;
  unsigned FleetProducers = 1;
  EngineSel Engine = EngineSel::Default;
  const char *EngineFlag = nullptr; // the flag that selected it

  auto selectEngine = [&](EngineSel Sel, const char *Flag) {
    if (Engine != EngineSel::Default && Engine != Sel) {
      std::fprintf(stderr,
                   "conflicting engine selections '%s' and '%s'\n",
                   EngineFlag, Flag);
      return false;
    }
    Engine = Sel;
    EngineFlag = Flag;
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strncmp(Arg, "--emit=", 7) == 0) {
      Emit = Arg + 7;
    } else if (std::strcmp(Arg, "-o") == 0 && I + 1 < argc) {
      OutPath = argv[++I];
    } else if (std::strcmp(Arg, "--baseline") == 0) {
      Baseline = true;
    } else if (std::strcmp(Arg, "--main") == 0) {
      EmitMain = true;
    } else if (std::strcmp(Arg, "-O0") == 0) {
      OptLevel = 0;
    } else if (std::strcmp(Arg, "-O1") == 0) {
      OptLevel = 1;
    } else if (std::strcmp(Arg, "--dump-passes") == 0) {
      DumpPasses = true;
    } else if (std::strcmp(Arg, "--dump-analysis") == 0) {
      DumpAnalysis = true;
    } else if (std::strcmp(Arg, "--dump-analysis=dot") == 0) {
      DumpAnalysis = true;
      DumpAnalysisDot = true;
    } else if (std::strcmp(Arg, "--lint") == 0) {
      Lint = true;
    } else if (std::strcmp(Arg, "--werror") == 0) {
      Lint = true;
      Werror = true;
    } else if (std::strcmp(Arg, "--run") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
      Emit = "run";
    } else if (std::strcmp(Arg, "--trace") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(Arg, "--horizon") == 0 && I + 1 < argc) {
      Horizon = std::strtoll(argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--fleet") == 0 && I + 1 < argc) {
      FleetShards = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--sessions") == 0 && I + 1 < argc) {
      FleetSessions = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--producers") == 0 && I + 1 < argc) {
      FleetProducers = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strncmp(Arg, "--engine=", 9) == 0) {
      const char *Which = Arg + 9;
      EngineSel Sel;
      if (std::strcmp(Which, "interp") == 0)
        Sel = EngineSel::Interp;
      else if (std::strcmp(Which, "batched") == 0)
        Sel = EngineSel::Batched;
      else if (std::strcmp(Which, "native") == 0)
        Sel = EngineSel::Native;
      else {
        std::fprintf(stderr, "unknown engine '%s'\n", Which);
        printUsage(argv[0]);
        return 2;
      }
      if (!selectEngine(Sel, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--batched") == 0) {
      if (!selectEngine(EngineSel::Batched, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--per-session") == 0) {
      if (!selectEngine(EngineSel::Interp, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else if (Arg[0] != '-' && !SpecPath) {
      SpecPath = Arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }
  if (!SpecPath) {
    printUsage(argv[0]);
    return 2;
  }

  auto Source = readFile(SpecPath);
  if (!Source) {
    std::fprintf(stderr, "cannot open %s\n", SpecPath);
    return 1;
  }
  DiagnosticEngine Diags;
  auto S = parseSpec(*Source, Diags);
  if (!S) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  if (Lint) {
    DiagnosticEngine LintDiags;
    opt::LintOptions LOpts;
    LOpts.WarningsAsErrors = Werror;
    unsigned Findings = opt::lintSpec(*S, LintDiags, LOpts);
    if (Findings != 0)
      std::fprintf(stderr, "%s", LintDiags.str().c_str());
    if (LintDiags.hasErrors())
      return 1;
  }

  // Compiles (and at -O1 optimizes) through the embedding API for the
  // modes that execute or emit the lowered program. Verification runs
  // after every pass; a failure is a compiler bug and exits nonzero.
  auto makePlan = [&]() -> std::optional<Program> {
    CompileOptions COpts;
    COpts.Optimize = !Baseline;
    COpts.OptLevel = OptLevel;
    OptStatistics Stats;
    auto Plan = compileSpec(*S, COpts, Diags, &Stats);
    if (!Plan) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return std::nullopt;
    }
    if (DumpPasses) {
      if (OptLevel >= 1)
        std::fprintf(stderr, "%s", Stats.str().c_str());
      else
        std::fprintf(stderr, "(-O0: no optimization passes run)\n");
    }
    return Plan;
  };

  // The abstract-interpretation dump is its own artifact: facts over the
  // program exactly as compiled (so -O1 shows what the optimizer left).
  if (DumpAnalysis) {
    std::optional<Program> Plan = makePlan();
    if (!Plan)
      return 1;
    absint::AnalysisFacts Facts = absint::AnalysisFacts::compute(*Plan);
    if (DumpAnalysisDot) {
      MutabilityOptions MOpts;
      MOpts.Optimize = !Baseline;
      AnalysisResult Analysis = analyzeSpec(*S, MOpts);
      return emitText(writeAnalysisFactsDot(Analysis.graph(), Facts),
                      OutPath);
    }
    return emitText(Facts.str(), OutPath);
  }

  // The analysis-artifact modes (reusing the analysis the program modes
  // run internally via compileSpec).
  if (Emit == "report" || Emit == "flat" || Emit == "source" ||
      Emit == "stats" || Emit == "dot") {
    MutabilityOptions MOpts;
    MOpts.Optimize = !Baseline;
    AnalysisResult Analysis = analyzeSpec(*S, MOpts);
    if (Emit == "report")
      return emitText(Analysis.report(), OutPath);
    if (Emit == "flat")
      return emitText(Analysis.spec().str(), OutPath);
    if (Emit == "source")
      return emitText(printSpecSource(Analysis.spec()), OutPath);
    if (Emit == "stats")
      return emitText(collectStatistics(Analysis).str(), OutPath);
    return emitText(
        writeUsageGraphDot(Analysis.graph(), &Analysis.mutability()),
        OutPath);
  }
  if (Emit == "plan") {
    std::optional<Program> Plan = makePlan();
    if (!Plan)
      return 1;
    return emitText(Plan->str(), OutPath);
  }
  if (Emit == "cpp") {
    std::optional<Program> Plan = makePlan();
    if (!Plan)
      return 1;
    CppEmitterOptions EOpts;
    EOpts.EmitMain = EmitMain;
    auto Code = emitCppMonitor(*Plan, EOpts, Diags);
    if (!Code) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    return emitText(*Code, OutPath);
  }
  if (Emit == "tpb") {
    std::optional<Program> Plan = makePlan();
    if (!Plan)
      return 1;
    std::vector<uint8_t> Bytes = serializeProgram(*Plan);
    FILE *Out = openOutput(OutPath, /*Binary=*/true);
    if (!Out)
      return 1;
    std::fwrite(Bytes.data(), 1, Bytes.size(), Out);
    return closeOutput(Out, OutPath);
  }
  if (Emit == "run") {
    if (!TracePath) {
      std::fprintf(stderr, "--emit=run needs --trace <trace.txt>\n");
      return 2;
    }
    auto TraceText = readFile(TracePath);
    if (!TraceText) {
      std::fprintf(stderr, "cannot open %s\n", TracePath);
      return 1;
    }
    auto Events = parseTrace(*TraceText, *S, Diags);
    if (!Events) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::optional<Program> PlanOpt = makePlan();
    if (!PlanOpt)
      return 1;
    Program &Plan = *PlanOpt;
    // Resolve the native tier up front (shared by the sequential and
    // the fleet path) so a missing compiler degrades to the interpreter
    // with one diagnostic instead of failing the run.
    EngineFactory NativeFactory;
    if (Engine == EngineSel::Native) {
      std::string NativeErr;
      NativeFactory =
          makeNativeEngineFactory(Plan, NativeCompileOptions(), NativeErr);
      if (!NativeFactory) {
        std::fprintf(stderr,
                     "native engine unavailable: %s; falling back to the "
                     "interpreter\n",
                     NativeErr.c_str());
        Engine = EngineSel::Interp;
      }
    }
    FILE *Out = openOutput(OutPath, /*Binary=*/false);
    if (!Out)
      return 1;
    if (FleetShards > 0) {
      // Multi-session replay: every session receives the same trace;
      // each producer thread interleaves its own sessions per event
      // (round-robin), mimicking a multiplexed feed. Output is the
      // deterministic fleet merge, invariant in the producer count.
      FleetOptions FOpts;
      FOpts.Shards = FleetShards;
      FOpts.Horizon = Horizon;
      switch (Engine) {
      case EngineSel::Default:
        FOpts.Mode = FleetMode::Auto;
        break;
      case EngineSel::Interp:
        FOpts.Mode = FleetMode::PerSession;
        break;
      case EngineSel::Batched:
        FOpts.Mode = FleetMode::Batched;
        break;
      case EngineSel::Native:
        FOpts.Mode = FleetMode::Native;
        FOpts.NativeFactory = NativeFactory;
        break;
      }
      unsigned Producers = std::min(FleetProducers, FleetSessions);
      FOpts.MaxProducers = std::max(FOpts.MaxProducers, Producers);
      MonitorFleet Fleet(Plan, FOpts);
      std::vector<std::thread> Threads;
      Threads.reserve(Producers);
      for (unsigned P = 0; P != Producers; ++P)
        Threads.emplace_back([&, P] {
          ProducerHandle Handle = Fleet.producer();
          for (const auto &[Id, Ts, V] : *Events)
            for (SessionId Session = P; Session < FleetSessions;
                 Session += Producers)
              Handle.feed(Session, Id, Ts, V);
        });
      for (std::thread &T : Threads)
        T.join();
      Fleet.finish();
      for (const SessionOutputEvent &E : Fleet.takeOutputs())
        std::fprintf(Out, "s%llu| %lld: %s = %s\n",
                     static_cast<unsigned long long>(E.Session),
                     static_cast<long long>(E.Event.Ts),
                     Plan.spec().stream(E.Event.Id).Name.c_str(),
                     E.Event.V.str().c_str());
      std::fprintf(stderr, "%s", Fleet.stats().str().c_str());
      int CloseRc = closeOutput(Out, OutPath);
      if (Fleet.failed()) {
        for (const SessionError &E : Fleet.errors())
          std::fprintf(stderr, "session %llu error: %s\n",
                       static_cast<unsigned long long>(E.Session),
                       E.Message.c_str());
        return 1;
      }
      return CloseRc;
    }
    // Sequential replay through a non-default engine: collect through
    // the ShardEngine interface, then print — same bytes as the
    // streaming interpreter path below.
    if (Engine == EngineSel::Batched || Engine == EngineSel::Native) {
      std::unique_ptr<ShardEngine> Eng =
          Engine == EngineSel::Batched ? makeBatchedEngine(Plan)
                                       : NativeFactory(Plan, true);
      EventBatch Batch;
      for (const auto &[Id, Ts, V] : *Events)
        Batch.Records.push_back({0, Id, Ts, V});
      std::string Err;
      std::vector<OutputEvent> Outs =
          runEngineSingle(*Eng, Batch, Horizon, &Err);
      for (const OutputEvent &E : Outs)
        std::fprintf(Out, "%lld: %s = %s\n", static_cast<long long>(E.Ts),
                     Plan.spec().stream(E.Id).Name.c_str(),
                     E.V.str().c_str());
      Eng.reset(); // a native engine must not outlive the library
      int CloseRc = closeOutput(Out, OutPath);
      if (!Err.empty()) {
        std::fprintf(stderr, "monitor error: %s\n", Err.c_str());
        return 1;
      }
      return CloseRc;
    }
    Monitor M(Plan);
    M.setOutputHandler([&Plan, Out](Time Ts, StreamId Id, const Value &V) {
      std::fprintf(Out, "%lld: %s = %s\n", static_cast<long long>(Ts),
                   Plan.spec().stream(Id).Name.c_str(), V.str().c_str());
    });
    for (const auto &[Id, Ts, V] : *Events)
      if (!M.feed(Id, Ts, V))
        break;
    M.finish(Horizon);
    int CloseRc = closeOutput(Out, OutPath);
    if (M.failed()) {
      std::fprintf(stderr, "monitor error: %s\n",
                   M.errorMessage().c_str());
      return 1;
    }
    return CloseRc;
  }
  std::fprintf(stderr, "unknown --emit mode '%s'\n", Emit.c_str());
  return 2;
}
