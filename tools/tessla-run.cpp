//===- tools/tessla-run.cpp - Frontend-free bundle runner -------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Executes a compiled TeSSLa program bundle (.tpb, see
/// Program/Serialize.h) over a textual trace — the deployment half of
/// the toolchain. This binary links only the runtime column
/// (values + program + runtime): no lexer, parser, type checker,
/// analysis or optimizer is in its link graph, which the configure-time
/// guard in tools/CMakeLists.txt enforces.
///
/// \code
///   tesslac spec.tessla -O1 --emit=tpb -o spec.tpb   # build machine
///   tessla-run spec.tpb < trace.txt                  # deployment box
///   tessla-run spec.tpb --trace trace.txt --fleet 4 --sessions 64
///   tessla-run spec.tpb --plan                       # inspect the plan
/// \endcode
///
/// Output is byte-identical to `tesslac --run` over the same program:
/// sequential events as "ts: name = value", fleet events prefixed with
/// "s<session>| ", fleet statistics on stderr.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceIO.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace tessla;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spec.tpb> [options]\n"
      "  --trace <trace.txt>               read the trace from a file\n"
      "                                    (default: stdin)\n"
      "  --horizon <t>                     bound delay draining at finish\n"
      "  --fleet <n>                       replay through a MonitorFleet\n"
      "                                    with n worker shards\n"
      "  --sessions <m>                    fleet sessions; the trace is\n"
      "                                    replayed once per session\n"
      "                                    (default 1)\n"
      "  --producers <p>                   fleet producer threads; the\n"
      "                                    sessions are partitioned over\n"
      "                                    them (default 1)\n"
      "  --engine=interp|batched|native    execution engine: one\n"
      "                                    interpreter Monitor per\n"
      "                                    session, SoA lockstep lanes,\n"
      "                                    or the compiled native tier\n"
      "                                    (CppEmitter -> system compiler\n"
      "                                    -> dlopen; falls back to the\n"
      "                                    interpreter when no compiler\n"
      "                                    is available). Outputs are\n"
      "                                    byte-identical across engines.\n"
      "                                    Default: batched with an\n"
      "                                    arrival-pattern heuristic\n"
      "                                    (fleet), interpreter\n"
      "                                    (sequential)\n"
      "  --batched | --per-session         aliases for --engine=batched /\n"
      "                                    --engine=interp\n"
      "  --plan                            print the loaded program\n"
      "                                    instead of executing\n",
      Argv0);
}

/// Engine selection shared by the sequential and fleet paths. Explicit
/// selections must agree; the aliases and --engine= are one knob.
enum class EngineSel { Default, Interp, Batched, Native };

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::string readStdin() {
  std::stringstream Buffer;
  Buffer << std::cin.rdbuf();
  return Buffer.str();
}

} // namespace

int main(int argc, char **argv) {
  const char *BundlePath = nullptr;
  const char *TracePath = nullptr;
  bool PrintPlan = false;
  std::optional<Time> Horizon;
  unsigned FleetShards = 0; // 0 = single-session sequential replay
  unsigned FleetSessions = 1;
  unsigned FleetProducers = 1;
  EngineSel Engine = EngineSel::Default;
  const char *EngineFlag = nullptr; // the flag that selected it

  auto selectEngine = [&](EngineSel Sel, const char *Flag) {
    if (Engine != EngineSel::Default && Engine != Sel) {
      std::fprintf(stderr,
                   "conflicting engine selections '%s' and '%s'\n",
                   EngineFlag, Flag);
      return false;
    }
    Engine = Sel;
    EngineFlag = Flag;
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--trace") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(Arg, "--horizon") == 0 && I + 1 < argc) {
      Horizon = std::strtoll(argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--fleet") == 0 && I + 1 < argc) {
      FleetShards = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--sessions") == 0 && I + 1 < argc) {
      FleetSessions = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--producers") == 0 && I + 1 < argc) {
      FleetProducers = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strncmp(Arg, "--engine=", 9) == 0) {
      const char *Which = Arg + 9;
      EngineSel Sel;
      if (std::strcmp(Which, "interp") == 0)
        Sel = EngineSel::Interp;
      else if (std::strcmp(Which, "batched") == 0)
        Sel = EngineSel::Batched;
      else if (std::strcmp(Which, "native") == 0)
        Sel = EngineSel::Native;
      else {
        std::fprintf(stderr, "unknown engine '%s'\n", Which);
        printUsage(argv[0]);
        return 2;
      }
      if (!selectEngine(Sel, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--batched") == 0) {
      if (!selectEngine(EngineSel::Batched, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--per-session") == 0) {
      if (!selectEngine(EngineSel::Interp, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--plan") == 0) {
      PrintPlan = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else if (Arg[0] != '-' && !BundlePath) {
      BundlePath = Arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }
  if (!BundlePath) {
    printUsage(argv[0]);
    return 2;
  }

  DiagnosticEngine Diags;
  std::optional<Program> PlanOpt = loadProgramFile(BundlePath, Diags);
  if (!PlanOpt) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Program &Plan = *PlanOpt;

  if (PrintPlan) {
    std::printf("%s", Plan.str().c_str());
    return 0;
  }

  std::string TraceText;
  if (TracePath) {
    auto Text = readFile(TracePath);
    if (!Text) {
      std::fprintf(stderr, "cannot open %s\n", TracePath);
      return 1;
    }
    TraceText = std::move(*Text);
  } else {
    TraceText = readStdin();
  }
  auto Events = parseTrace(TraceText, Plan.spec(), Diags);
  if (!Events) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Resolve the native tier up front (shared by the sequential and the
  // fleet path) so a missing compiler degrades to the interpreter with
  // one diagnostic instead of failing the run.
  EngineFactory NativeFactory;
  if (Engine == EngineSel::Native) {
    std::string NativeErr;
    NativeFactory =
        makeNativeEngineFactory(Plan, NativeCompileOptions(), NativeErr);
    if (!NativeFactory) {
      std::fprintf(stderr,
                   "native engine unavailable: %s; falling back to the "
                   "interpreter\n",
                   NativeErr.c_str());
      Engine = EngineSel::Interp;
    }
  }

  if (FleetShards > 0) {
    // Same multi-session replay shape as `tesslac --run --fleet`: the
    // sessions are partitioned over the producer threads, each feeding
    // the whole trace to its sessions through its own handle.
    FleetOptions FOpts;
    FOpts.Shards = FleetShards;
    FOpts.Horizon = Horizon;
    switch (Engine) {
    case EngineSel::Default:
      FOpts.Mode = FleetMode::Auto;
      break;
    case EngineSel::Interp:
      FOpts.Mode = FleetMode::PerSession;
      break;
    case EngineSel::Batched:
      FOpts.Mode = FleetMode::Batched;
      break;
    case EngineSel::Native:
      FOpts.Mode = FleetMode::Native;
      FOpts.NativeFactory = NativeFactory;
      break;
    }
    unsigned Producers = std::min(FleetProducers, FleetSessions);
    FOpts.MaxProducers = std::max(FOpts.MaxProducers, Producers);
    MonitorFleet Fleet(Plan, FOpts);
    std::vector<std::thread> Threads;
    Threads.reserve(Producers);
    for (unsigned P = 0; P != Producers; ++P)
      Threads.emplace_back([&, P] {
        ProducerHandle Handle = Fleet.producer();
        for (const auto &[Id, Ts, V] : *Events)
          for (SessionId Session = P; Session < FleetSessions;
               Session += Producers)
            Handle.feed(Session, Id, Ts, V);
      });
    for (std::thread &T : Threads)
      T.join();
    Fleet.finish();
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      std::printf("s%llu| %lld: %s = %s\n",
                  static_cast<unsigned long long>(E.Session),
                  static_cast<long long>(E.Event.Ts),
                  Plan.spec().stream(E.Event.Id).Name.c_str(),
                  E.Event.V.str().c_str());
    std::fprintf(stderr, "%s", Fleet.stats().str().c_str());
    if (Fleet.failed()) {
      for (const SessionError &E : Fleet.errors())
        std::fprintf(stderr, "session %llu error: %s\n",
                     static_cast<unsigned long long>(E.Session),
                     E.Message.c_str());
      return 1;
    }
    return 0;
  }

  // Sequential replay through a non-default engine: collect through the
  // ShardEngine interface, then print — same bytes as the streaming
  // interpreter path below.
  if (Engine == EngineSel::Batched || Engine == EngineSel::Native) {
    std::unique_ptr<ShardEngine> Eng =
        Engine == EngineSel::Batched ? makeBatchedEngine(Plan)
                                     : NativeFactory(Plan, true);
    EventBatch Batch;
    for (const auto &[Id, Ts, V] : *Events)
      Batch.Records.push_back({0, Id, Ts, V});
    std::string Err;
    std::vector<OutputEvent> Outs =
        runEngineSingle(*Eng, Batch, Horizon, &Err);
    for (const OutputEvent &E : Outs)
      std::printf("%lld: %s = %s\n", static_cast<long long>(E.Ts),
                  Plan.spec().stream(E.Id).Name.c_str(), E.V.str().c_str());
    Eng.reset(); // a native engine must not outlive this scope's library
    if (!Err.empty()) {
      std::fprintf(stderr, "monitor error: %s\n", Err.c_str());
      return 1;
    }
    return 0;
  }

  Monitor M(Plan);
  M.setOutputHandler([&Plan](Time Ts, StreamId Id, const Value &V) {
    std::printf("%lld: %s = %s\n", static_cast<long long>(Ts),
                Plan.spec().stream(Id).Name.c_str(), V.str().c_str());
  });
  for (const auto &[Id, Ts, V] : *Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish(Horizon);
  if (M.failed()) {
    std::fprintf(stderr, "monitor error: %s\n", M.errorMessage().c_str());
    return 1;
  }
  return 0;
}
