//===- tools/tessla-run.cpp - Frontend-free bundle runner -------------------===//
//
// Part of the tessla-aggregate-update project, MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// Executes a compiled TeSSLa program bundle (.tpb, see
/// Program/Serialize.h) over a textual trace — the deployment half of
/// the toolchain. This binary links only the runtime column
/// (values + program + runtime): no lexer, parser, type checker,
/// analysis or optimizer is in its link graph, which the configure-time
/// guard in tools/CMakeLists.txt enforces.
///
/// \code
///   tesslac spec.tessla -O1 --emit=tpb -o spec.tpb   # build machine
///   tessla-run spec.tpb < trace.txt                  # deployment box
///   tessla-run spec.tpb --trace trace.txt --fleet 4 --sessions 64
///   tessla-run spec.tpb --plan                       # inspect the plan
/// \endcode
///
/// Output is byte-identical to `tesslac --run` over the same program:
/// sequential events as "ts: name = value", fleet events prefixed with
/// "s<session>| ", fleet statistics on stderr.
///
//===----------------------------------------------------------------------===//

#include "tessla/CodeGen/NativeCompile.h"
#include "tessla/Program/Serialize.h"
#include "tessla/Runtime/Checkpoint.h"
#include "tessla/Runtime/FleetClient.h"
#include "tessla/Runtime/FleetServer.h"
#include "tessla/Runtime/MonitorFleet.h"
#include "tessla/Runtime/TraceIO.h"
#include "tessla/Runtime/Transport.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace tessla;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spec.tpb> [options]\n"
      "  --trace <trace.txt>               read the trace from a file\n"
      "                                    (default: stdin)\n"
      "  --horizon <t>                     bound delay draining at finish\n"
      "  --fleet <n>                       replay through a MonitorFleet\n"
      "                                    with n worker shards\n"
      "  --sessions <m>                    fleet sessions; the trace is\n"
      "                                    replayed once per session\n"
      "                                    (default 1)\n"
      "  --producers <p>                   fleet producer threads; the\n"
      "                                    sessions are partitioned over\n"
      "                                    them (default 1)\n"
      "  --engine=interp|batched|native    execution engine: one\n"
      "                                    interpreter Monitor per\n"
      "                                    session, SoA lockstep lanes,\n"
      "                                    or the compiled native tier\n"
      "                                    (CppEmitter -> system compiler\n"
      "                                    -> dlopen; falls back to the\n"
      "                                    interpreter when no compiler\n"
      "                                    is available). Outputs are\n"
      "                                    byte-identical across engines.\n"
      "                                    Default: batched with an\n"
      "                                    arrival-pattern heuristic\n"
      "                                    (fleet), interpreter\n"
      "                                    (sequential)\n"
      "  --batched | --per-session         aliases for --engine=batched /\n"
      "                                    --engine=interp\n"
      "  --plan                            print the loaded program\n"
      "                                    instead of executing\n"
      "service mode (Runtime/FleetServer.h over a Unix socket):\n"
      "  --serve <socket>                  run as a monitor server: accept\n"
      "                                    wire-format connections until a\n"
      "                                    Shutdown frame. --fleet/--engine/\n"
      "                                    --horizon configure the fleet;\n"
      "                                    --restore-from seeds it from a\n"
      "                                    checkpoint before serving\n"
      "  --connect <socket>                talk to a server instead of\n"
      "                                    executing locally. Feeds the\n"
      "                                    trace (stdin or --trace) unless\n"
      "                                    only control actions are given\n"
      "  --checkpoint-to <file.tcp>        ask the server for a live\n"
      "                                    checkpoint and write it\n"
      "  --restore-from <file.tcp>         restore a checkpoint (into the\n"
      "                                    server with --connect, or into\n"
      "                                    a fresh server with --serve)\n"
      "  --fork <src>:<dst>                O(1) snapshot-fork of live\n"
      "                                    session <src> into new session\n"
      "                                    <dst> (producers must be closed)\n"
      "  --finish                          fleet end-of-input: print the\n"
      "                                    merged outputs\n"
      "  --stats                           print the server's fleet stats\n"
      "  --shutdown                        stop the server process\n"
      "  --feed-until <t>                  feed only events with ts <= t\n"
      "  --skip-until <t>                  skip events with ts <= t (for\n"
      "                                    resuming after a checkpoint)\n",
      Argv0);
}

/// Engine selection shared by the sequential and fleet paths. Explicit
/// selections must agree; the aliases and --engine= are one knob.
enum class EngineSel { Default, Interp, Batched, Native };

std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::string readStdin() {
  std::stringstream Buffer;
  Buffer << std::cin.rdbuf();
  return Buffer.str();
}

std::optional<std::vector<uint8_t>> readBinaryFile(const char *Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::vector<uint8_t> Bytes{std::istreambuf_iterator<char>(In),
                             std::istreambuf_iterator<char>()};
  return Bytes;
}

bool writeBinaryFile(const char *Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  return static_cast<bool>(Out);
}

} // namespace

int main(int argc, char **argv) {
  const char *BundlePath = nullptr;
  const char *TracePath = nullptr;
  bool PrintPlan = false;
  std::optional<Time> Horizon;
  unsigned FleetShards = 0; // 0 = single-session sequential replay
  unsigned FleetSessions = 1;
  unsigned FleetProducers = 1;
  EngineSel Engine = EngineSel::Default;
  const char *EngineFlag = nullptr; // the flag that selected it
  const char *ServePath = nullptr;
  const char *ConnectPath = nullptr;
  const char *CheckpointTo = nullptr;
  const char *RestoreFrom = nullptr;
  const char *ForkArg = nullptr;
  bool DoFinish = false;
  bool DoStats = false;
  bool DoShutdown = false;
  std::optional<Time> FeedUntil;
  std::optional<Time> SkipUntil;

  auto selectEngine = [&](EngineSel Sel, const char *Flag) {
    if (Engine != EngineSel::Default && Engine != Sel) {
      std::fprintf(stderr,
                   "conflicting engine selections '%s' and '%s'\n",
                   EngineFlag, Flag);
      return false;
    }
    Engine = Sel;
    EngineFlag = Flag;
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--trace") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(Arg, "--horizon") == 0 && I + 1 < argc) {
      Horizon = std::strtoll(argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--fleet") == 0 && I + 1 < argc) {
      FleetShards = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--sessions") == 0 && I + 1 < argc) {
      FleetSessions = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strcmp(Arg, "--producers") == 0 && I + 1 < argc) {
      FleetProducers = static_cast<unsigned>(
          std::max(1ll, std::strtoll(argv[++I], nullptr, 10)));
    } else if (std::strncmp(Arg, "--engine=", 9) == 0) {
      const char *Which = Arg + 9;
      EngineSel Sel;
      if (std::strcmp(Which, "interp") == 0)
        Sel = EngineSel::Interp;
      else if (std::strcmp(Which, "batched") == 0)
        Sel = EngineSel::Batched;
      else if (std::strcmp(Which, "native") == 0)
        Sel = EngineSel::Native;
      else {
        std::fprintf(stderr, "unknown engine '%s'\n", Which);
        printUsage(argv[0]);
        return 2;
      }
      if (!selectEngine(Sel, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--batched") == 0) {
      if (!selectEngine(EngineSel::Batched, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--per-session") == 0) {
      if (!selectEngine(EngineSel::Interp, Arg))
        return 2;
    } else if (std::strcmp(Arg, "--plan") == 0) {
      PrintPlan = true;
    } else if (std::strcmp(Arg, "--serve") == 0 && I + 1 < argc) {
      ServePath = argv[++I];
    } else if (std::strcmp(Arg, "--connect") == 0 && I + 1 < argc) {
      ConnectPath = argv[++I];
    } else if (std::strcmp(Arg, "--checkpoint-to") == 0 && I + 1 < argc) {
      CheckpointTo = argv[++I];
    } else if (std::strcmp(Arg, "--restore-from") == 0 && I + 1 < argc) {
      RestoreFrom = argv[++I];
    } else if (std::strcmp(Arg, "--fork") == 0 && I + 1 < argc) {
      ForkArg = argv[++I];
    } else if (std::strcmp(Arg, "--finish") == 0) {
      DoFinish = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      DoStats = true;
    } else if (std::strcmp(Arg, "--shutdown") == 0) {
      DoShutdown = true;
    } else if (std::strcmp(Arg, "--feed-until") == 0 && I + 1 < argc) {
      FeedUntil = std::strtoll(argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--skip-until") == 0 && I + 1 < argc) {
      SkipUntil = std::strtoll(argv[++I], nullptr, 10);
    } else if (std::strcmp(Arg, "--help") == 0) {
      printUsage(argv[0]);
      return 0;
    } else if (Arg[0] != '-' && !BundlePath) {
      BundlePath = Arg;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg);
      printUsage(argv[0]);
      return 2;
    }
  }
  if (!BundlePath) {
    printUsage(argv[0]);
    return 2;
  }

  DiagnosticEngine Diags;
  std::optional<Program> PlanOpt = loadProgramFile(BundlePath, Diags);
  if (!PlanOpt) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  Program &Plan = *PlanOpt;

  if (PrintPlan) {
    std::printf("%s", Plan.str().c_str());
    return 0;
  }

  // Resolve the native tier up front (shared by the sequential, fleet
  // and server paths) so a missing compiler degrades to the interpreter
  // with one diagnostic instead of failing the run.
  EngineFactory NativeFactory;
  if (Engine == EngineSel::Native) {
    std::string NativeErr;
    NativeFactory =
        makeNativeEngineFactory(Plan, NativeCompileOptions(), NativeErr);
    if (!NativeFactory) {
      std::fprintf(stderr,
                   "native engine unavailable: %s; falling back to the "
                   "interpreter\n",
                   NativeErr.c_str());
      Engine = EngineSel::Interp;
    }
  }

  auto makeFleetOpts = [&](unsigned Shards) {
    FleetOptions FOpts;
    FOpts.Shards = Shards;
    FOpts.Horizon = Horizon;
    switch (Engine) {
    case EngineSel::Default:
      FOpts.Mode = FleetMode::Auto;
      break;
    case EngineSel::Interp:
      FOpts.Mode = FleetMode::PerSession;
      break;
    case EngineSel::Batched:
      FOpts.Mode = FleetMode::Batched;
      break;
    case EngineSel::Native:
      FOpts.Mode = FleetMode::Native;
      FOpts.NativeFactory = NativeFactory;
      break;
    }
    return FOpts;
  };

  if (ServePath) {
    unsigned Shards = FleetShards == 0 ? 1 : FleetShards;
    FleetServer Server(Plan, makeFleetOpts(Shards));
    if (RestoreFrom) {
      auto Bytes = readBinaryFile(RestoreFrom);
      if (!Bytes) {
        std::fprintf(stderr, "cannot open %s\n", RestoreFrom);
        return 1;
      }
      std::string Err;
      auto N = Server.client().restore(*Bytes, &Err);
      if (!N) {
        std::fprintf(stderr, "restore failed: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "restored %llu session(s) from %s\n",
                   static_cast<unsigned long long>(*N), RestoreFrom);
    }
    std::string Err;
    auto L = listenUnixSocket(ServePath, &Err);
    if (!L) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving %s on %s (%u shard(s))\n", BundlePath,
                 ServePath, Shards);
    Server.serve(*L);
    return 0;
  }

  if (ConnectPath) {
    std::string Err;
    uint64_t ServerCk = 0;
    auto Client = makeUnixSocketClient(ConnectPath, &Err, &ServerCk);
    if (!Client) {
      std::fprintf(stderr, "%s\n", Err.c_str());
      return 1;
    }
    if (ServerCk != programChecksum(Plan)) {
      std::fprintf(stderr,
                   "bundle mismatch: the server runs a different program "
                   "(checksum %016llx, local %016llx)\n",
                   static_cast<unsigned long long>(ServerCk),
                   static_cast<unsigned long long>(programChecksum(Plan)));
      return 1;
    }
    if (RestoreFrom) {
      auto Bytes = readBinaryFile(RestoreFrom);
      if (!Bytes) {
        std::fprintf(stderr, "cannot open %s\n", RestoreFrom);
        return 1;
      }
      auto N = Client->restore(*Bytes, &Err);
      if (!N) {
        std::fprintf(stderr, "restore failed: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "restored %llu session(s)\n",
                   static_cast<unsigned long long>(*N));
    }

    // Feed the trace unless this is a control-only invocation.
    bool ControlOnly = (CheckpointTo || RestoreFrom || ForkArg || DoFinish ||
                        DoStats || DoShutdown) &&
                       !TracePath;
    if (!ControlOnly) {
      std::string TraceText;
      if (TracePath) {
        auto Text = readFile(TracePath);
        if (!Text) {
          std::fprintf(stderr, "cannot open %s\n", TracePath);
          return 1;
        }
        TraceText = std::move(*Text);
      } else {
        TraceText = readStdin();
      }
      auto Events = parseTrace(TraceText, Plan.spec(), Diags);
      if (!Events) {
        std::fprintf(stderr, "%s", Diags.str().c_str());
        return 1;
      }
      unsigned Producers = std::min(FleetProducers, FleetSessions);
      std::vector<std::thread> Threads;
      std::vector<uint64_t> Busy(Producers, 0);
      std::atomic<bool> FeedFailed{false};
      for (unsigned P = 0; P != Producers; ++P)
        Threads.emplace_back([&, P] {
          std::string PErr;
          auto Prod = Client->producer(&PErr);
          if (!Prod) {
            std::fprintf(stderr, "producer %u: %s\n", P, PErr.c_str());
            FeedFailed.store(true);
            return;
          }
          for (const auto &[Id, Ts, V] : *Events) {
            if (SkipUntil && Ts <= *SkipUntil)
              continue;
            if (FeedUntil && Ts > *FeedUntil)
              break;
            for (SessionId Session = P; Session < FleetSessions;
                 Session += Producers)
              if (!Prod->feed(Session, Id, Ts, V)) {
                std::fprintf(stderr, "producer %u: %s\n", P,
                             Prod->error().c_str());
                FeedFailed.store(true);
                return;
              }
          }
          if (!Prod->close()) {
            std::fprintf(stderr, "producer %u: %s\n", P,
                         Prod->error().c_str());
            FeedFailed.store(true);
          }
          Busy[P] = Prod->busySignals();
        });
      for (std::thread &T : Threads)
        T.join();
      uint64_t TotalBusy = 0;
      for (uint64_t B : Busy)
        TotalBusy += B;
      if (TotalBusy)
        std::fprintf(stderr, "backpressure: %llu busy signal(s)\n",
                     static_cast<unsigned long long>(TotalBusy));
      if (FeedFailed.load())
        return 1;
    }

    if (ForkArg) {
      char *Sep = nullptr;
      unsigned long long Src = std::strtoull(ForkArg, &Sep, 10);
      if (!Sep || *Sep != ':') {
        std::fprintf(stderr, "--fork expects <src>:<dst>, got '%s'\n",
                     ForkArg);
        return 2;
      }
      char *End = nullptr;
      unsigned long long Dst = std::strtoull(Sep + 1, &End, 10);
      if (End == Sep + 1 || (End && *End != '\0')) {
        std::fprintf(stderr, "--fork expects <src>:<dst>, got '%s'\n",
                     ForkArg);
        return 2;
      }
      if (!Client->forkSession(Src, Dst, &Err)) {
        std::fprintf(stderr, "fork failed: %s\n", Err.c_str());
        return 1;
      }
      std::fprintf(stderr, "forked session %llu -> %llu\n", Src, Dst);
    }

    if (CheckpointTo) {
      auto Bytes = Client->snapshot(&Err);
      if (!Bytes) {
        std::fprintf(stderr, "checkpoint failed: %s\n", Err.c_str());
        return 1;
      }
      if (!writeBinaryFile(CheckpointTo, *Bytes)) {
        std::fprintf(stderr, "cannot write %s\n", CheckpointTo);
        return 1;
      }
      std::fprintf(stderr, "checkpoint: %zu bytes -> %s\n", Bytes->size(),
                   CheckpointTo);
    }

    if (DoFinish) {
      auto R = Client->finish(&Err);
      if (!R) {
        std::fprintf(stderr, "finish failed: %s\n", Err.c_str());
        return 1;
      }
      for (const SessionOutputEvent &E : R->Outputs)
        std::printf("s%llu| %lld: %s = %s\n",
                    static_cast<unsigned long long>(E.Session),
                    static_cast<long long>(E.Event.Ts),
                    Plan.spec().stream(E.Event.Id).Name.c_str(),
                    E.Event.V.str().c_str());
      if (R->FailedSessions) {
        std::fprintf(stderr, "%llu session(s) failed\n",
                     static_cast<unsigned long long>(R->FailedSessions));
        return 1;
      }
    }

    if (DoStats) {
      auto S = Client->statsText(&Err);
      if (!S) {
        std::fprintf(stderr, "stats failed: %s\n", Err.c_str());
        return 1;
      }
      std::printf("%s", S->c_str());
    }

    if (DoShutdown && !Client->shutdownServer(&Err)) {
      std::fprintf(stderr, "shutdown failed: %s\n", Err.c_str());
      return 1;
    }
    return 0;
  }

  std::string TraceText;
  if (TracePath) {
    auto Text = readFile(TracePath);
    if (!Text) {
      std::fprintf(stderr, "cannot open %s\n", TracePath);
      return 1;
    }
    TraceText = std::move(*Text);
  } else {
    TraceText = readStdin();
  }
  auto Events = parseTrace(TraceText, Plan.spec(), Diags);
  if (!Events) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  if (FleetShards > 0) {
    // Same multi-session replay shape as `tesslac --run --fleet`: the
    // sessions are partitioned over the producer threads, each feeding
    // the whole trace to its sessions through its own handle.
    FleetOptions FOpts = makeFleetOpts(FleetShards);
    unsigned Producers = std::min(FleetProducers, FleetSessions);
    FOpts.MaxProducers = std::max(FOpts.MaxProducers, Producers);
    MonitorFleet Fleet(Plan, FOpts);
    std::vector<std::thread> Threads;
    Threads.reserve(Producers);
    for (unsigned P = 0; P != Producers; ++P)
      Threads.emplace_back([&, P] {
        ProducerHandle Handle = Fleet.producer();
        for (const auto &[Id, Ts, V] : *Events)
          for (SessionId Session = P; Session < FleetSessions;
               Session += Producers)
            Handle.feed(Session, Id, Ts, V);
      });
    for (std::thread &T : Threads)
      T.join();
    Fleet.finish();
    for (const SessionOutputEvent &E : Fleet.takeOutputs())
      std::printf("s%llu| %lld: %s = %s\n",
                  static_cast<unsigned long long>(E.Session),
                  static_cast<long long>(E.Event.Ts),
                  Plan.spec().stream(E.Event.Id).Name.c_str(),
                  E.Event.V.str().c_str());
    std::fprintf(stderr, "%s", Fleet.stats().str().c_str());
    if (Fleet.failed()) {
      for (const SessionError &E : Fleet.errors())
        std::fprintf(stderr, "session %llu error: %s\n",
                     static_cast<unsigned long long>(E.Session),
                     E.Message.c_str());
      return 1;
    }
    return 0;
  }

  // Sequential replay through a non-default engine: collect through the
  // ShardEngine interface, then print — same bytes as the streaming
  // interpreter path below.
  if (Engine == EngineSel::Batched || Engine == EngineSel::Native) {
    std::unique_ptr<ShardEngine> Eng =
        Engine == EngineSel::Batched ? makeBatchedEngine(Plan)
                                     : NativeFactory(Plan, true);
    EventBatch Batch;
    for (const auto &[Id, Ts, V] : *Events)
      Batch.Records.push_back({0, Id, Ts, V});
    std::string Err;
    std::vector<OutputEvent> Outs =
        runEngineSingle(*Eng, Batch, Horizon, &Err);
    for (const OutputEvent &E : Outs)
      std::printf("%lld: %s = %s\n", static_cast<long long>(E.Ts),
                  Plan.spec().stream(E.Id).Name.c_str(), E.V.str().c_str());
    Eng.reset(); // a native engine must not outlive this scope's library
    if (!Err.empty()) {
      std::fprintf(stderr, "monitor error: %s\n", Err.c_str());
      return 1;
    }
    return 0;
  }

  Monitor M(Plan);
  M.setOutputHandler([&Plan](Time Ts, StreamId Id, const Value &V) {
    std::printf("%lld: %s = %s\n", static_cast<long long>(Ts),
                Plan.spec().stream(Id).Name.c_str(), V.str().c_str());
  });
  for (const auto &[Id, Ts, V] : *Events)
    if (!M.feed(Id, Ts, V))
      break;
  M.finish(Horizon);
  if (M.failed()) {
    std::fprintf(stderr, "monitor error: %s\n", M.errorMessage().c_str());
    return 1;
  }
  return 0;
}
