# Empty dependencies file for peak_detection.
# This may be replaced when dependencies are built.
