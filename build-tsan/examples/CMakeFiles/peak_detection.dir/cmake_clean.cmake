file(REMOVE_RECURSE
  "CMakeFiles/peak_detection.dir/peak_detection.cpp.o"
  "CMakeFiles/peak_detection.dir/peak_detection.cpp.o.d"
  "peak_detection"
  "peak_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
