file(REMOVE_RECURSE
  "CMakeFiles/db_access_monitor.dir/db_access_monitor.cpp.o"
  "CMakeFiles/db_access_monitor.dir/db_access_monitor.cpp.o.d"
  "db_access_monitor"
  "db_access_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_access_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
