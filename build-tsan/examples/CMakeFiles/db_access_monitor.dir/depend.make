# Empty dependencies file for db_access_monitor.
# This may be replaced when dependencies are built.
