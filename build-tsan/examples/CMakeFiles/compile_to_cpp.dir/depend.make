# Empty dependencies file for compile_to_cpp.
# This may be replaced when dependencies are built.
