file(REMOVE_RECURSE
  "CMakeFiles/compile_to_cpp.dir/compile_to_cpp.cpp.o"
  "CMakeFiles/compile_to_cpp.dir/compile_to_cpp.cpp.o.d"
  "compile_to_cpp"
  "compile_to_cpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_to_cpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
