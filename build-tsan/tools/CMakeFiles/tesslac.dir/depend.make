# Empty dependencies file for tesslac.
# This may be replaced when dependencies are built.
