file(REMOVE_RECURSE
  "CMakeFiles/tesslac.dir/tesslac.cpp.o"
  "CMakeFiles/tesslac.dir/tesslac.cpp.o.d"
  "tesslac"
  "tesslac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tesslac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
