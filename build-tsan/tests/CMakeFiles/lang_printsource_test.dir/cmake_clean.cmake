file(REMOVE_RECURSE
  "CMakeFiles/lang_printsource_test.dir/Lang/PrintSourceTest.cpp.o"
  "CMakeFiles/lang_printsource_test.dir/Lang/PrintSourceTest.cpp.o.d"
  "lang_printsource_test"
  "lang_printsource_test.pdb"
  "lang_printsource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_printsource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
