# Empty dependencies file for lang_printsource_test.
# This may be replaced when dependencies are built.
