file(REMOVE_RECURSE
  "CMakeFiles/analysis_trigger_test.dir/Analysis/TriggerFormulaTest.cpp.o"
  "CMakeFiles/analysis_trigger_test.dir/Analysis/TriggerFormulaTest.cpp.o.d"
  "analysis_trigger_test"
  "analysis_trigger_test.pdb"
  "analysis_trigger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_trigger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
