# Empty dependencies file for analysis_trigger_test.
# This may be replaced when dependencies are built.
