# Empty dependencies file for lang_type_test.
# This may be replaced when dependencies are built.
