file(REMOVE_RECURSE
  "CMakeFiles/lang_type_test.dir/Lang/TypeTest.cpp.o"
  "CMakeFiles/lang_type_test.dir/Lang/TypeTest.cpp.o.d"
  "lang_type_test"
  "lang_type_test.pdb"
  "lang_type_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_type_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
