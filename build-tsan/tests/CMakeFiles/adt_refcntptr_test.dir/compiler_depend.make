# Empty compiler generated dependencies file for adt_refcntptr_test.
# This may be replaced when dependencies are built.
