file(REMOVE_RECURSE
  "CMakeFiles/adt_refcntptr_test.dir/ADT/RefCntPtrTest.cpp.o"
  "CMakeFiles/adt_refcntptr_test.dir/ADT/RefCntPtrTest.cpp.o.d"
  "adt_refcntptr_test"
  "adt_refcntptr_test.pdb"
  "adt_refcntptr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_refcntptr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
