file(REMOVE_RECURSE
  "CMakeFiles/runtime_tracegen_test.dir/Runtime/TraceGenTest.cpp.o"
  "CMakeFiles/runtime_tracegen_test.dir/Runtime/TraceGenTest.cpp.o.d"
  "runtime_tracegen_test"
  "runtime_tracegen_test.pdb"
  "runtime_tracegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tracegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
