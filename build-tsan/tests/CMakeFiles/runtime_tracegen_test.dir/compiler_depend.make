# Empty compiler generated dependencies file for runtime_tracegen_test.
# This may be replaced when dependencies are built.
