# Empty dependencies file for runtime_value_test.
# This may be replaced when dependencies are built.
