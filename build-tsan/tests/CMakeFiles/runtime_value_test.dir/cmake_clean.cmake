file(REMOVE_RECURSE
  "CMakeFiles/runtime_value_test.dir/Runtime/ValueTest.cpp.o"
  "CMakeFiles/runtime_value_test.dir/Runtime/ValueTest.cpp.o.d"
  "runtime_value_test"
  "runtime_value_test.pdb"
  "runtime_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
