# Empty dependencies file for runtime_monitor_test.
# This may be replaced when dependencies are built.
