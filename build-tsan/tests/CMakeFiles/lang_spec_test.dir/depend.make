# Empty dependencies file for lang_spec_test.
# This may be replaced when dependencies are built.
