file(REMOVE_RECURSE
  "CMakeFiles/lang_spec_test.dir/Lang/SpecTest.cpp.o"
  "CMakeFiles/lang_spec_test.dir/Lang/SpecTest.cpp.o.d"
  "lang_spec_test"
  "lang_spec_test.pdb"
  "lang_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
