# Empty compiler generated dependencies file for lang_specfiles_test.
# This may be replaced when dependencies are built.
