file(REMOVE_RECURSE
  "CMakeFiles/lang_specfiles_test.dir/Lang/SpecFilesTest.cpp.o"
  "CMakeFiles/lang_specfiles_test.dir/Lang/SpecFilesTest.cpp.o.d"
  "lang_specfiles_test"
  "lang_specfiles_test.pdb"
  "lang_specfiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_specfiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
