file(REMOVE_RECURSE
  "CMakeFiles/integration_oracle_test.dir/Integration/SemanticsOracleTest.cpp.o"
  "CMakeFiles/integration_oracle_test.dir/Integration/SemanticsOracleTest.cpp.o.d"
  "integration_oracle_test"
  "integration_oracle_test.pdb"
  "integration_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
