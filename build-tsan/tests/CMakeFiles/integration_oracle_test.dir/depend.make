# Empty dependencies file for integration_oracle_test.
# This may be replaced when dependencies are built.
