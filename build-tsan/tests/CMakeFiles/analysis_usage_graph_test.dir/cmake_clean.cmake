file(REMOVE_RECURSE
  "CMakeFiles/analysis_usage_graph_test.dir/Analysis/UsageGraphTest.cpp.o"
  "CMakeFiles/analysis_usage_graph_test.dir/Analysis/UsageGraphTest.cpp.o.d"
  "analysis_usage_graph_test"
  "analysis_usage_graph_test.pdb"
  "analysis_usage_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_usage_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
