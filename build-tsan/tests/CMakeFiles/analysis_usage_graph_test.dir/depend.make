# Empty dependencies file for analysis_usage_graph_test.
# This may be replaced when dependencies are built.
