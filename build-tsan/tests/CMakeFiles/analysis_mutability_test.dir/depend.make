# Empty dependencies file for analysis_mutability_test.
# This may be replaced when dependencies are built.
