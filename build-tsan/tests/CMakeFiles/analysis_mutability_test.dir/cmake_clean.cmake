file(REMOVE_RECURSE
  "CMakeFiles/analysis_mutability_test.dir/Analysis/MutabilityTest.cpp.o"
  "CMakeFiles/analysis_mutability_test.dir/Analysis/MutabilityTest.cpp.o.d"
  "analysis_mutability_test"
  "analysis_mutability_test.pdb"
  "analysis_mutability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_mutability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
