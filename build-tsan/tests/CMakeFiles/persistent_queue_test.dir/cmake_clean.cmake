file(REMOVE_RECURSE
  "CMakeFiles/persistent_queue_test.dir/Persistent/QueueTest.cpp.o"
  "CMakeFiles/persistent_queue_test.dir/Persistent/QueueTest.cpp.o.d"
  "persistent_queue_test"
  "persistent_queue_test.pdb"
  "persistent_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
