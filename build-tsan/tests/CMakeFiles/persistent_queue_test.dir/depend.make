# Empty dependencies file for persistent_queue_test.
# This may be replaced when dependencies are built.
