file(REMOVE_RECURSE
  "CMakeFiles/persistent_list_test.dir/Persistent/ListTest.cpp.o"
  "CMakeFiles/persistent_list_test.dir/Persistent/ListTest.cpp.o.d"
  "persistent_list_test"
  "persistent_list_test.pdb"
  "persistent_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
