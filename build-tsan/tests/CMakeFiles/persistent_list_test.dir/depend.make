# Empty dependencies file for persistent_list_test.
# This may be replaced when dependencies are built.
