# Empty dependencies file for runtime_monitor_edge_test.
# This may be replaced when dependencies are built.
