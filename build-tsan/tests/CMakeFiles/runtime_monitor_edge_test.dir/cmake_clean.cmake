file(REMOVE_RECURSE
  "CMakeFiles/runtime_monitor_edge_test.dir/Runtime/MonitorEdgeCasesTest.cpp.o"
  "CMakeFiles/runtime_monitor_edge_test.dir/Runtime/MonitorEdgeCasesTest.cpp.o.d"
  "runtime_monitor_edge_test"
  "runtime_monitor_edge_test.pdb"
  "runtime_monitor_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_monitor_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
