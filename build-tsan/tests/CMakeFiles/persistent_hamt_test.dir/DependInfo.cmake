
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/Persistent/HamtTest.cpp" "tests/CMakeFiles/persistent_hamt_test.dir/Persistent/HamtTest.cpp.o" "gcc" "tests/CMakeFiles/persistent_hamt_test.dir/Persistent/HamtTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tessla_codegen.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_lang.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_sat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_adt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
