# Empty dependencies file for persistent_hamt_test.
# This may be replaced when dependencies are built.
