file(REMOVE_RECURSE
  "CMakeFiles/persistent_hamt_test.dir/Persistent/HamtTest.cpp.o"
  "CMakeFiles/persistent_hamt_test.dir/Persistent/HamtTest.cpp.o.d"
  "persistent_hamt_test"
  "persistent_hamt_test.pdb"
  "persistent_hamt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_hamt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
