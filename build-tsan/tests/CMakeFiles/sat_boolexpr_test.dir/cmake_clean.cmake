file(REMOVE_RECURSE
  "CMakeFiles/sat_boolexpr_test.dir/SAT/BoolExprTest.cpp.o"
  "CMakeFiles/sat_boolexpr_test.dir/SAT/BoolExprTest.cpp.o.d"
  "sat_boolexpr_test"
  "sat_boolexpr_test.pdb"
  "sat_boolexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_boolexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
