file(REMOVE_RECURSE
  "CMakeFiles/codegen_compile_run_test.dir/CodeGen/CompileRunTest.cpp.o"
  "CMakeFiles/codegen_compile_run_test.dir/CodeGen/CompileRunTest.cpp.o.d"
  "codegen_compile_run_test"
  "codegen_compile_run_test.pdb"
  "codegen_compile_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_compile_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
