# Empty dependencies file for codegen_compile_run_test.
# This may be replaced when dependencies are built.
