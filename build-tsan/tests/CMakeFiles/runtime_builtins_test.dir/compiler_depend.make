# Empty compiler generated dependencies file for runtime_builtins_test.
# This may be replaced when dependencies are built.
