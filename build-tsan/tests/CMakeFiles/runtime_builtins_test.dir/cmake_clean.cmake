file(REMOVE_RECURSE
  "CMakeFiles/runtime_builtins_test.dir/Runtime/BuiltinImplsTest.cpp.o"
  "CMakeFiles/runtime_builtins_test.dir/Runtime/BuiltinImplsTest.cpp.o.d"
  "runtime_builtins_test"
  "runtime_builtins_test.pdb"
  "runtime_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
