# Empty dependencies file for runtime_traceio_test.
# This may be replaced when dependencies are built.
