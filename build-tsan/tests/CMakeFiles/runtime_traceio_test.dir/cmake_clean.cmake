file(REMOVE_RECURSE
  "CMakeFiles/runtime_traceio_test.dir/Runtime/TraceIOTest.cpp.o"
  "CMakeFiles/runtime_traceio_test.dir/Runtime/TraceIOTest.cpp.o.d"
  "runtime_traceio_test"
  "runtime_traceio_test.pdb"
  "runtime_traceio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_traceio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
