# Empty dependencies file for integration_workloads_test.
# This may be replaced when dependencies are built.
