file(REMOVE_RECURSE
  "CMakeFiles/integration_workloads_test.dir/Integration/WorkloadTest.cpp.o"
  "CMakeFiles/integration_workloads_test.dir/Integration/WorkloadTest.cpp.o.d"
  "integration_workloads_test"
  "integration_workloads_test.pdb"
  "integration_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
