# Empty compiler generated dependencies file for adt_graph_algos_test.
# This may be replaced when dependencies are built.
