file(REMOVE_RECURSE
  "CMakeFiles/adt_graph_algos_test.dir/ADT/GraphAlgosTest.cpp.o"
  "CMakeFiles/adt_graph_algos_test.dir/ADT/GraphAlgosTest.cpp.o.d"
  "adt_graph_algos_test"
  "adt_graph_algos_test.pdb"
  "adt_graph_algos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_graph_algos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
