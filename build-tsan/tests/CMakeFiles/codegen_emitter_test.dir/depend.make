# Empty dependencies file for codegen_emitter_test.
# This may be replaced when dependencies are built.
