file(REMOVE_RECURSE
  "CMakeFiles/codegen_emitter_test.dir/CodeGen/CppEmitterTest.cpp.o"
  "CMakeFiles/codegen_emitter_test.dir/CodeGen/CppEmitterTest.cpp.o.d"
  "codegen_emitter_test"
  "codegen_emitter_test.pdb"
  "codegen_emitter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_emitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
