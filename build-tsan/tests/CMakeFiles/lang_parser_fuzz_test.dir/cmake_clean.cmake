file(REMOVE_RECURSE
  "CMakeFiles/lang_parser_fuzz_test.dir/Lang/ParserFuzzTest.cpp.o"
  "CMakeFiles/lang_parser_fuzz_test.dir/Lang/ParserFuzzTest.cpp.o.d"
  "lang_parser_fuzz_test"
  "lang_parser_fuzz_test.pdb"
  "lang_parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
