file(REMOVE_RECURSE
  "CMakeFiles/runtime_monitor_fleet_test.dir/Runtime/MonitorFleetTest.cpp.o"
  "CMakeFiles/runtime_monitor_fleet_test.dir/Runtime/MonitorFleetTest.cpp.o.d"
  "runtime_monitor_fleet_test"
  "runtime_monitor_fleet_test.pdb"
  "runtime_monitor_fleet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_monitor_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
