# Empty dependencies file for runtime_monitor_fleet_test.
# This may be replaced when dependencies are built.
