file(REMOVE_RECURSE
  "CMakeFiles/analysis_aliasing_test.dir/Analysis/AliasingTest.cpp.o"
  "CMakeFiles/analysis_aliasing_test.dir/Analysis/AliasingTest.cpp.o.d"
  "analysis_aliasing_test"
  "analysis_aliasing_test.pdb"
  "analysis_aliasing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_aliasing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
