# Empty dependencies file for analysis_aliasing_test.
# This may be replaced when dependencies are built.
