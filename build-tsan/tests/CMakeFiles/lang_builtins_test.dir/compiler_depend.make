# Empty compiler generated dependencies file for lang_builtins_test.
# This may be replaced when dependencies are built.
