file(REMOVE_RECURSE
  "CMakeFiles/lang_builtins_test.dir/Lang/BuiltinsTest.cpp.o"
  "CMakeFiles/lang_builtins_test.dir/Lang/BuiltinsTest.cpp.o.d"
  "lang_builtins_test"
  "lang_builtins_test.pdb"
  "lang_builtins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_builtins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
