# Empty compiler generated dependencies file for analysis_statistics_test.
# This may be replaced when dependencies are built.
