file(REMOVE_RECURSE
  "CMakeFiles/analysis_statistics_test.dir/Analysis/StatisticsTest.cpp.o"
  "CMakeFiles/analysis_statistics_test.dir/Analysis/StatisticsTest.cpp.o.d"
  "analysis_statistics_test"
  "analysis_statistics_test.pdb"
  "analysis_statistics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_statistics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
