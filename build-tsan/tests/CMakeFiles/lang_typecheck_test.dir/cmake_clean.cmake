file(REMOVE_RECURSE
  "CMakeFiles/lang_typecheck_test.dir/Lang/TypeCheckTest.cpp.o"
  "CMakeFiles/lang_typecheck_test.dir/Lang/TypeCheckTest.cpp.o.d"
  "lang_typecheck_test"
  "lang_typecheck_test.pdb"
  "lang_typecheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_typecheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
