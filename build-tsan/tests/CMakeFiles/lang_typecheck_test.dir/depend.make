# Empty dependencies file for lang_typecheck_test.
# This may be replaced when dependencies are built.
