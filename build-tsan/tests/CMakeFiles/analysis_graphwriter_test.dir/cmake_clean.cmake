file(REMOVE_RECURSE
  "CMakeFiles/analysis_graphwriter_test.dir/Analysis/GraphWriterTest.cpp.o"
  "CMakeFiles/analysis_graphwriter_test.dir/Analysis/GraphWriterTest.cpp.o.d"
  "analysis_graphwriter_test"
  "analysis_graphwriter_test.pdb"
  "analysis_graphwriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_graphwriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
