# Empty dependencies file for analysis_graphwriter_test.
# This may be replaced when dependencies are built.
