# Empty dependencies file for adt_union_find_test.
# This may be replaced when dependencies are built.
