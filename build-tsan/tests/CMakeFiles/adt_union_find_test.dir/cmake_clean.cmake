file(REMOVE_RECURSE
  "CMakeFiles/adt_union_find_test.dir/ADT/UnionFindTest.cpp.o"
  "CMakeFiles/adt_union_find_test.dir/ADT/UnionFindTest.cpp.o.d"
  "adt_union_find_test"
  "adt_union_find_test.pdb"
  "adt_union_find_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_union_find_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
