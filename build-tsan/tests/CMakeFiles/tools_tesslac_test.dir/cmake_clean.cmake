file(REMOVE_RECURSE
  "CMakeFiles/tools_tesslac_test.dir/Tools/TesslacTest.cpp.o"
  "CMakeFiles/tools_tesslac_test.dir/Tools/TesslacTest.cpp.o.d"
  "tools_tesslac_test"
  "tools_tesslac_test.pdb"
  "tools_tesslac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_tesslac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
