# Empty dependencies file for tools_tesslac_test.
# This may be replaced when dependencies are built.
