# Empty dependencies file for tessla_analysis.
# This may be replaced when dependencies are built.
