file(REMOVE_RECURSE
  "CMakeFiles/tessla_analysis.dir/Analysis/Aliasing.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/Aliasing.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/GraphWriter.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/GraphWriter.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/Mutability.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/Mutability.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/Pipeline.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/Pipeline.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/Statistics.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/Statistics.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/TranslationOrder.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/TranslationOrder.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/TriggerFormula.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/TriggerFormula.cpp.o.d"
  "CMakeFiles/tessla_analysis.dir/Analysis/UsageGraph.cpp.o"
  "CMakeFiles/tessla_analysis.dir/Analysis/UsageGraph.cpp.o.d"
  "libtessla_analysis.a"
  "libtessla_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
