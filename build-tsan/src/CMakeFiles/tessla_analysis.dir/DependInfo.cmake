
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/Analysis/Aliasing.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/Aliasing.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/Aliasing.cpp.o.d"
  "/root/repo/src/Analysis/GraphWriter.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/GraphWriter.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/GraphWriter.cpp.o.d"
  "/root/repo/src/Analysis/Mutability.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/Mutability.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/Mutability.cpp.o.d"
  "/root/repo/src/Analysis/Pipeline.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/Pipeline.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/Pipeline.cpp.o.d"
  "/root/repo/src/Analysis/Statistics.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/Statistics.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/Statistics.cpp.o.d"
  "/root/repo/src/Analysis/TranslationOrder.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/TranslationOrder.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/TranslationOrder.cpp.o.d"
  "/root/repo/src/Analysis/TriggerFormula.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/TriggerFormula.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/TriggerFormula.cpp.o.d"
  "/root/repo/src/Analysis/UsageGraph.cpp" "src/CMakeFiles/tessla_analysis.dir/Analysis/UsageGraph.cpp.o" "gcc" "src/CMakeFiles/tessla_analysis.dir/Analysis/UsageGraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tessla_lang.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_sat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_adt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
