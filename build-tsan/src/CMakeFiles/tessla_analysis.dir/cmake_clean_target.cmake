file(REMOVE_RECURSE
  "libtessla_analysis.a"
)
