file(REMOVE_RECURSE
  "libtessla_adt.a"
)
