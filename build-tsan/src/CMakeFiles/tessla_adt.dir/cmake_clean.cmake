file(REMOVE_RECURSE
  "CMakeFiles/tessla_adt.dir/ADT/GraphAlgos.cpp.o"
  "CMakeFiles/tessla_adt.dir/ADT/GraphAlgos.cpp.o.d"
  "CMakeFiles/tessla_adt.dir/ADT/UnionFind.cpp.o"
  "CMakeFiles/tessla_adt.dir/ADT/UnionFind.cpp.o.d"
  "libtessla_adt.a"
  "libtessla_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
