# Empty dependencies file for tessla_adt.
# This may be replaced when dependencies are built.
