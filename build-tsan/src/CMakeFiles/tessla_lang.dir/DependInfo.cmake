
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/Lang/Builder.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Builder.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Builder.cpp.o.d"
  "/root/repo/src/Lang/Builtins.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Builtins.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Builtins.cpp.o.d"
  "/root/repo/src/Lang/Flatten.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Flatten.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Flatten.cpp.o.d"
  "/root/repo/src/Lang/Lexer.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Lexer.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Lexer.cpp.o.d"
  "/root/repo/src/Lang/Parser.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Parser.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Parser.cpp.o.d"
  "/root/repo/src/Lang/PrintSource.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/PrintSource.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/PrintSource.cpp.o.d"
  "/root/repo/src/Lang/Spec.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Spec.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Spec.cpp.o.d"
  "/root/repo/src/Lang/Type.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/Type.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/Type.cpp.o.d"
  "/root/repo/src/Lang/TypeCheck.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/TypeCheck.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/TypeCheck.cpp.o.d"
  "/root/repo/src/Lang/TypeUnifier.cpp" "src/CMakeFiles/tessla_lang.dir/Lang/TypeUnifier.cpp.o" "gcc" "src/CMakeFiles/tessla_lang.dir/Lang/TypeUnifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tessla_adt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
