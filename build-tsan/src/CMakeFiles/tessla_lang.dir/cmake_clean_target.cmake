file(REMOVE_RECURSE
  "libtessla_lang.a"
)
