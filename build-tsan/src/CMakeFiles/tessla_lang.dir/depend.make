# Empty dependencies file for tessla_lang.
# This may be replaced when dependencies are built.
