file(REMOVE_RECURSE
  "CMakeFiles/tessla_lang.dir/Lang/Builder.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Builder.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Builtins.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Builtins.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Flatten.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Flatten.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Lexer.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Lexer.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Parser.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Parser.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/PrintSource.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/PrintSource.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Spec.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Spec.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/Type.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/Type.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/TypeCheck.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/TypeCheck.cpp.o.d"
  "CMakeFiles/tessla_lang.dir/Lang/TypeUnifier.cpp.o"
  "CMakeFiles/tessla_lang.dir/Lang/TypeUnifier.cpp.o.d"
  "libtessla_lang.a"
  "libtessla_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
