file(REMOVE_RECURSE
  "libtessla_runtime.a"
)
