file(REMOVE_RECURSE
  "CMakeFiles/tessla_runtime.dir/Runtime/BuiltinImpls.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/BuiltinImpls.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/Containers.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/Containers.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/Monitor.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/Monitor.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/MonitorFleet.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/MonitorFleet.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/MonitorPlan.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/MonitorPlan.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/TraceGen.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/TraceGen.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/TraceIO.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/TraceIO.cpp.o.d"
  "CMakeFiles/tessla_runtime.dir/Runtime/Value.cpp.o"
  "CMakeFiles/tessla_runtime.dir/Runtime/Value.cpp.o.d"
  "libtessla_runtime.a"
  "libtessla_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
