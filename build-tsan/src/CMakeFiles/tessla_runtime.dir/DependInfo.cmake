
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/Runtime/BuiltinImpls.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/BuiltinImpls.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/BuiltinImpls.cpp.o.d"
  "/root/repo/src/Runtime/Containers.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/Containers.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/Containers.cpp.o.d"
  "/root/repo/src/Runtime/Monitor.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/Monitor.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/Monitor.cpp.o.d"
  "/root/repo/src/Runtime/MonitorFleet.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/MonitorFleet.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/MonitorFleet.cpp.o.d"
  "/root/repo/src/Runtime/MonitorPlan.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/MonitorPlan.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/MonitorPlan.cpp.o.d"
  "/root/repo/src/Runtime/TraceGen.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/TraceGen.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/TraceGen.cpp.o.d"
  "/root/repo/src/Runtime/TraceIO.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/TraceIO.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/TraceIO.cpp.o.d"
  "/root/repo/src/Runtime/Value.cpp" "src/CMakeFiles/tessla_runtime.dir/Runtime/Value.cpp.o" "gcc" "src/CMakeFiles/tessla_runtime.dir/Runtime/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tessla_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_lang.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_sat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_adt.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tessla_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
