# Empty dependencies file for tessla_runtime.
# This may be replaced when dependencies are built.
