file(REMOVE_RECURSE
  "CMakeFiles/tessla_support.dir/Support/Diagnostics.cpp.o"
  "CMakeFiles/tessla_support.dir/Support/Diagnostics.cpp.o.d"
  "CMakeFiles/tessla_support.dir/Support/Format.cpp.o"
  "CMakeFiles/tessla_support.dir/Support/Format.cpp.o.d"
  "libtessla_support.a"
  "libtessla_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
