file(REMOVE_RECURSE
  "libtessla_support.a"
)
