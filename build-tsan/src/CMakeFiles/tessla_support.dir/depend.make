# Empty dependencies file for tessla_support.
# This may be replaced when dependencies are built.
