# Empty dependencies file for tessla_codegen.
# This may be replaced when dependencies are built.
