file(REMOVE_RECURSE
  "libtessla_codegen.a"
)
