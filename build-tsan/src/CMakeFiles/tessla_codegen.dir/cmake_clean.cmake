file(REMOVE_RECURSE
  "CMakeFiles/tessla_codegen.dir/CodeGen/CppEmitter.cpp.o"
  "CMakeFiles/tessla_codegen.dir/CodeGen/CppEmitter.cpp.o.d"
  "libtessla_codegen.a"
  "libtessla_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
