# Empty dependencies file for tessla_eval.
# This may be replaced when dependencies are built.
