file(REMOVE_RECURSE
  "CMakeFiles/tessla_eval.dir/Eval/Workloads.cpp.o"
  "CMakeFiles/tessla_eval.dir/Eval/Workloads.cpp.o.d"
  "libtessla_eval.a"
  "libtessla_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
