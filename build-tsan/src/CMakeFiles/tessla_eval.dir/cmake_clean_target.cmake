file(REMOVE_RECURSE
  "libtessla_eval.a"
)
