# Empty dependencies file for tessla_sat.
# This may be replaced when dependencies are built.
