file(REMOVE_RECURSE
  "libtessla_sat.a"
)
