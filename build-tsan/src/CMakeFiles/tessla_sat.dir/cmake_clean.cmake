file(REMOVE_RECURSE
  "CMakeFiles/tessla_sat.dir/SAT/BoolExpr.cpp.o"
  "CMakeFiles/tessla_sat.dir/SAT/BoolExpr.cpp.o.d"
  "CMakeFiles/tessla_sat.dir/SAT/CNF.cpp.o"
  "CMakeFiles/tessla_sat.dir/SAT/CNF.cpp.o.d"
  "CMakeFiles/tessla_sat.dir/SAT/Solver.cpp.o"
  "CMakeFiles/tessla_sat.dir/SAT/Solver.cpp.o.d"
  "libtessla_sat.a"
  "libtessla_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tessla_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
