file(REMOVE_RECURSE
  "../bench/fig10_seenset_scaling"
  "../bench/fig10_seenset_scaling.pdb"
  "CMakeFiles/fig10_seenset_scaling.dir/fig10_seenset_scaling.cpp.o"
  "CMakeFiles/fig10_seenset_scaling.dir/fig10_seenset_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_seenset_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
