# Empty compiler generated dependencies file for fig10_seenset_scaling.
# This may be replaced when dependencies are built.
