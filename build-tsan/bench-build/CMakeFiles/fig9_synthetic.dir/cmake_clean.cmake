file(REMOVE_RECURSE
  "../bench/fig9_synthetic"
  "../bench/fig9_synthetic.pdb"
  "CMakeFiles/fig9_synthetic.dir/fig9_synthetic.cpp.o"
  "CMakeFiles/fig9_synthetic.dir/fig9_synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
