# Empty dependencies file for fig9_synthetic.
# This may be replaced when dependencies are built.
