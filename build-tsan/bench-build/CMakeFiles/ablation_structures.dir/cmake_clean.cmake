file(REMOVE_RECURSE
  "../bench/ablation_structures"
  "../bench/ablation_structures.pdb"
  "CMakeFiles/ablation_structures.dir/ablation_structures.cpp.o"
  "CMakeFiles/ablation_structures.dir/ablation_structures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
