# Empty compiler generated dependencies file for ablation_structures.
# This may be replaced when dependencies are built.
