# Empty dependencies file for ablation_structures.
# This may be replaced when dependencies are built.
