file(REMOVE_RECURSE
  "../bench/fleet_scaling"
  "../bench/fleet_scaling.pdb"
  "CMakeFiles/fleet_scaling.dir/fleet_scaling.cpp.o"
  "CMakeFiles/fleet_scaling.dir/fleet_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
