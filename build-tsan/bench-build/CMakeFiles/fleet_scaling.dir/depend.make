# Empty dependencies file for fleet_scaling.
# This may be replaced when dependencies are built.
