file(REMOVE_RECURSE
  "../bench/ablation_codegen"
  "../bench/ablation_codegen.pdb"
  "CMakeFiles/ablation_codegen.dir/ablation_codegen.cpp.o"
  "CMakeFiles/ablation_codegen.dir/ablation_codegen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
