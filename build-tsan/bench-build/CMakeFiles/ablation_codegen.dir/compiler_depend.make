# Empty compiler generated dependencies file for ablation_codegen.
# This may be replaced when dependencies are built.
