file(REMOVE_RECURSE
  "../bench/table1_realworld"
  "../bench/table1_realworld.pdb"
  "CMakeFiles/table1_realworld.dir/table1_realworld.cpp.o"
  "CMakeFiles/table1_realworld.dir/table1_realworld.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
