# Empty dependencies file for table1_realworld.
# This may be replaced when dependencies are built.
