# Empty compiler generated dependencies file for ablation_compile_time.
# This may be replaced when dependencies are built.
