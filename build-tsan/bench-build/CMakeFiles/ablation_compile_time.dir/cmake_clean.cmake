file(REMOVE_RECURSE
  "../bench/ablation_compile_time"
  "../bench/ablation_compile_time.pdb"
  "CMakeFiles/ablation_compile_time.dir/ablation_compile_time.cpp.o"
  "CMakeFiles/ablation_compile_time.dir/ablation_compile_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
